package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/sim"
)

// HTTP is the client backend for the regshared service: Execute POSTs
// the request to /v1/run and decodes the Result. The server side runs
// its own sim.Runner, so requests from many clients deduplicate and
// share one store there; the client-side runner's own dedup and stores
// still apply first, making the service a second, shared tier.
type HTTP struct {
	base   string
	client *http.Client
}

// NewHTTP builds a client for the service at base (e.g.
// "http://host:8347"). No request timeout is set — simulations are
// legitimately long — so cancellation comes from the per-call context.
func NewHTTP(base string) *HTTP {
	return &HTTP{base: strings.TrimSuffix(base, "/"), client: &http.Client{}}
}

// Execute runs req on the remote service.
func (h *HTTP) Execute(ctx context.Context, req sim.Request) (*sim.Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("dispatch: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(simverHeader, sim.Version())
	resp, err := h.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, canceledErr(req.Bench, ctxCause(ctx))
		}
		return nil, fmt.Errorf("dispatch: %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	// When both sides carry a comparable (VCS-derived) simulator
	// identity, a mismatch means the service runs different simulator
	// code: its results are not this client's results, and caching them
	// locally would poison the store's staleness check. Digest-fallback
	// identities (go run, dirty trees) name a binary rather than the
	// source, so different processes legitimately differ and are not
	// comparable — the operator owns version discipline there.
	if sv := resp.Header.Get(simverHeader); comparableSimver(sv) && comparableSimver(sim.Version()) && sv != sim.Version() {
		return nil, fmt.Errorf("dispatch: %s runs simulator version %s, this client is %s: refusing to mix results",
			h.base, sv, sim.Version())
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var res sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("dispatch: decoding result from %s: %w", h.base, err)
	}
	// Drain the encoder's trailing newline so the connection returns to
	// the keep-alive pool instead of being torn down per request.
	io.Copy(io.Discard, resp.Body)
	return &res, nil
}

// Close releases idle connections.
func (h *HTTP) Close() error {
	h.client.CloseIdleConnections()
	return nil
}

// decodeHTTPError turns a non-200 service response back into a typed
// error. Responses that are not the service's JSON error shape (a
// proxy's HTML, a truncated body) degrade to a status-code error.
func decodeHTTPError(resp *http.Response) error {
	var we struct {
		Error string `json:"error"`
		Kind  string `json:"error_kind"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(data, &we); err == nil && we.Error != "" {
		return wireError(we.Kind, we.Error)
	}
	return fmt.Errorf("dispatch: service returned %s: %s", resp.Status, bytes.TrimSpace(data))
}
