package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
)

// workerEnv marks a process as a pool worker: Pool re-executes the
// current binary with this set, and MaybeWorker diverts such a process
// into the frame loop before it ever reaches flag parsing.
const workerEnv = "REGSHARED_POOL_WORKER"

// MaybeWorker turns the process into a pool worker — serve frames on
// stdin/stdout until EOF, then exit — when it was spawned by a Pool.
// Every command that accepts -backend (and every test binary whose
// tests build a Pool) calls it first thing in main/TestMain; in a
// normal invocation it is a no-op.
func MaybeWorker() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dispatch worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeWorker runs the pool worker loop: decode one workerRequest frame
// at a time from r, execute it in-process, encode the workerResponse to
// w. A frame carries either one request or a coalesced batch (Reqs),
// answered with per-item outcomes. Returns nil on EOF (the pool closed
// our stdin: a graceful shutdown). The loop is deliberately one frame
// at a time — the pool owns scheduling, and one crashed simulation must
// take down nothing but its own process.
func ServeWorker(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	for {
		var fr workerRequest
		if err := dec.Decode(&fr); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("decoding request frame: %w", err)
		}
		resp := workerResponse{ID: fr.ID}
		if len(fr.Reqs) > 0 {
			// Batch frame: execute every item, carrying each item's
			// typed error in-band so one bad request cannot fail its
			// siblings.
			resp.Items = make([]workerItem, len(fr.Reqs))
			for i := range fr.Reqs {
				res, err := sim.Simulate(context.Background(), fr.Reqs[i])
				if err != nil {
					resp.Items[i] = workerItem{Err: err.Error(), Kind: errorKind(err)}
				} else {
					resp.Items[i] = workerItem{Result: res}
				}
			}
		} else {
			res, err := sim.Simulate(context.Background(), fr.Req)
			if err != nil {
				resp.Err = err.Error()
				resp.Kind = errorKind(err)
			} else {
				resp.Result = res
			}
		}
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("encoding response frame: %w", err)
		}
	}
}
