package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// fakeBulk is a scripted BulkBackend: it records every batch it is
// handed and answers each item with an echo result whose StaticUops is
// the request's Measure — which lets the tests verify per-item routing
// exactly, with no simulator in the loop.
type fakeBulk struct {
	// block, when non-nil, is received from before answering a batch —
	// the cancel-mid-batch tests hold flushed batches open with it.
	block chan struct{}
	// observe, when non-nil, sees each batch's context before answering.
	observe func(ctx context.Context, reqs []sim.Request)

	mu      sync.Mutex
	batches [][]sim.Request
	seen    map[uint64]int // Measure -> times dispatched
}

func newFakeBulk() *fakeBulk {
	return &fakeBulk{seen: make(map[uint64]int)}
}

func (f *fakeBulk) Execute(ctx context.Context, req sim.Request) (*sim.Result, error) {
	items, err := f.ExecuteBatch(ctx, []sim.Request{req})
	if err != nil {
		return nil, err
	}
	return items[0].Res, items[0].Err
}

func (f *fakeBulk) ExecuteBatch(ctx context.Context, reqs []sim.Request) ([]BatchItem, error) {
	f.mu.Lock()
	f.batches = append(f.batches, append([]sim.Request(nil), reqs...))
	for _, r := range reqs {
		f.seen[r.Measure]++
	}
	f.mu.Unlock()
	if f.observe != nil {
		f.observe(ctx, reqs)
	}
	if f.block != nil {
		<-f.block
	}
	items := make([]BatchItem, len(reqs))
	for i, r := range reqs {
		items[i] = BatchItem{Res: &sim.Result{Bench: r.Bench, StaticUops: int(r.Measure)}}
	}
	return items, nil
}

func (f *fakeBulk) Close() error { return nil }

func (f *fakeBulk) snapshot() (batches [][]sim.Request, seen map[uint64]int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	batches = append(batches, f.batches...)
	seen = make(map[uint64]int, len(f.seen))
	for k, v := range f.seen {
		seen[k] = v
	}
	return batches, seen
}

// idReq builds a fake request whose Measure doubles as its identity.
func idReq(id int) sim.Request {
	return sim.Request{Bench: fmt.Sprintf("req-%d", id), Measure: uint64(id)}
}

// TestBatcherBurstCoalesces: a burst of N concurrent Executes flushes
// into ceil(N/size) size-triggered batches, every caller receives its
// own item's result, and no batch exceeds the size bound.
func TestBatcherBurstCoalesces(t *testing.T) {
	const n, size = 100, 10
	f := newFakeBulk()
	b := NewBatcher(f, size, time.Second)
	defer b.Close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]*sim.Result, n)
	for i := range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = b.Execute(context.Background(), idReq(i))
		}()
	}
	wg.Wait()

	for i := range n {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if results[i] == nil || results[i].StaticUops != i {
			t.Fatalf("request %d got someone else's result: %+v", i, results[i])
		}
	}
	batches, seen := f.snapshot()
	if len(batches) > (n+size-1)/size+1 {
		t.Errorf("burst of %d flushed as %d batches, want at most %d", n, len(batches), (n+size-1)/size+1)
	}
	for _, batch := range batches {
		if len(batch) > size {
			t.Errorf("batch of %d items exceeds the size bound %d", len(batch), size)
		}
	}
	for id, times := range seen {
		if times != 1 {
			t.Errorf("request %d dispatched %d times, want exactly once", id, times)
		}
	}
	if st := b.Stats(); st.Items != n {
		t.Errorf("stats count %d items, want %d", st.Items, n)
	}
}

// TestBatcherDeadlineFlush: a trickle that never reaches the size bound
// still completes — the MaxWait deadline flushes it.
func TestBatcherDeadlineFlush(t *testing.T) {
	f := newFakeBulk()
	b := NewBatcher(f, 1000, 20*time.Millisecond)
	defer b.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for i := range 5 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := b.Execute(context.Background(), idReq(i))
			if err != nil || res.StaticUops != i {
				t.Errorf("request %d: res=%+v err=%v", i, res, err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("trickle took %v, the deadline flush did not fire", elapsed)
	}
	st := b.Stats()
	if st.SizeFlushes != 0 || st.DeadlineFlushes == 0 {
		t.Errorf("want only deadline flushes, got %+v", st)
	}
	if st.Items != 5 {
		t.Errorf("stats count %d items, want 5", st.Items)
	}
}

// TestBatcherCancelBeforeFlush: a caller canceled while its item is
// still pending gets a sim.ErrCanceled wrap and the item is withdrawn —
// the eventual flush carries only the surviving siblings.
func TestBatcherCancelBeforeFlush(t *testing.T) {
	f := newFakeBulk()
	b := NewBatcher(f, 10, 150*time.Millisecond)
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	canceledDone := make(chan error, 1)
	go func() {
		_, err := b.Execute(ctx, idReq(99))
		canceledDone <- err
	}()
	// Wait until the doomed item is pending, then two survivors join.
	for {
		if b.Stats().Batches == 0 && len(b.pendingSnapshot()) == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	for i := range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := b.Execute(context.Background(), idReq(i))
			if err != nil || res.StaticUops != i {
				t.Errorf("survivor %d: res=%+v err=%v", i, res, err)
			}
		}()
	}
	cancel()
	err := <-canceledDone
	if !errors.Is(err, sim.ErrCanceled) {
		t.Errorf("canceled caller got %v, want a sim.ErrCanceled wrap", err)
	}
	wg.Wait()

	batches, seen := f.snapshot()
	if times := seen[99]; times != 0 {
		t.Errorf("withdrawn item was dispatched %d times, want never", times)
	}
	var total int
	for _, batch := range batches {
		total += len(batch)
	}
	if total != 2 {
		t.Errorf("backend saw %d items, want exactly the 2 survivors", total)
	}
}

// pendingSnapshot exposes the pending count to the withdraw test.
func (b *Batcher) pendingSnapshot() []*pendingItem {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*pendingItem(nil), b.pending...)
}

// TestBatcherCancelMidBatch: canceling one member of an in-flight batch
// returns that caller immediately with a typed error, does NOT cancel
// the batch context (the siblings still need it), and the sibling still
// gets its result. Only when every member cancels does the batch
// context die.
func TestBatcherCancelMidBatch(t *testing.T) {
	f := newFakeBulk()
	f.block = make(chan struct{})
	batchCtx := make(chan context.Context, 1)
	f.observe = func(ctx context.Context, _ []sim.Request) { batchCtx <- ctx }
	b := NewBatcher(f, 2, time.Hour)
	defer b.Close()

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	aDone := make(chan error, 1)
	bDone := make(chan *sim.Result, 1)
	go func() {
		_, err := b.Execute(ctxA, idReq(1))
		aDone <- err
	}()
	go func() {
		res, err := b.Execute(context.Background(), idReq(2))
		if err != nil {
			t.Errorf("sibling failed: %v", err)
		}
		bDone <- res
	}()

	bctx := <-batchCtx // the batch is in flight and blocked
	cancelA()
	select {
	case err := <-aDone:
		if !errors.Is(err, sim.ErrCanceled) {
			t.Errorf("canceled member got %v, want a sim.ErrCanceled wrap", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled member did not return while its batch was still running")
	}
	if bctx.Err() != nil {
		t.Error("batch context canceled while a member is still waiting")
	}

	close(f.block) // let the batch finish
	select {
	case res := <-bDone:
		if res == nil || res.StaticUops != 2 {
			t.Errorf("sibling got %+v, want its own result", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sibling never got its result")
	}
}

// TestBatcherAllCanceledKillsBatchContext: the batch context dies once
// every member has canceled — that is the only thing that may abort an
// in-flight batch.
func TestBatcherAllCanceledKillsBatchContext(t *testing.T) {
	f := newFakeBulk()
	f.block = make(chan struct{})
	defer close(f.block)
	batchCtx := make(chan context.Context, 1)
	f.observe = func(ctx context.Context, _ []sim.Request) { batchCtx <- ctx }
	b := NewBatcher(f, 2, time.Hour)
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Execute(ctx, idReq(i)); !errors.Is(err, sim.ErrCanceled) {
				t.Errorf("member %d got %v, want a sim.ErrCanceled wrap", i, err)
			}
		}()
	}
	bctx := <-batchCtx
	cancel()
	wg.Wait()
	select {
	case <-bctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("batch context still alive after every member canceled")
	}
}

// TestBatcherPoisonedItemIsolated: one invalid request inside a batch
// comes back as that item's typed error — reachable via errors.Is —
// while every sibling carries its result. Exercised over the real
// in-process bulk path (batched local backend).
func TestBatcherPoisonedItemIsolated(t *testing.T) {
	b := NewBatcher(Local{}, 4, 50*time.Millisecond)
	defer b.Close()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range 3 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := b.Execute(context.Background(), smallReq("crafty", 50+uint64(i)))
			if err != nil {
				t.Errorf("good request %d failed: %v", i, err)
			} else if res == nil || res.S.Committed == 0 {
				t.Errorf("good request %d got an empty result", i)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[3] = b.Execute(context.Background(), smallReq("no-such-bench", 50))
	}()
	wg.Wait()
	if !errors.Is(errs[3], sim.ErrUnknownBenchmark) {
		t.Errorf("poisoned item got %v, want a sim.ErrUnknownBenchmark wrap", errs[3])
	}
}

// TestBatcherPoolPoisonedItem runs the same isolation property over the
// subprocess pool: the bad item's typed error crosses the batch frame
// in-band, siblings get results, and no worker crashes.
func TestBatcherPoolPoisonedItem(t *testing.T) {
	pool := NewPool(2)
	b := NewBatcher(pool, 3, 50*time.Millisecond)
	defer b.Close()

	var wg sync.WaitGroup
	var badErr error
	for i := range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := b.Execute(context.Background(), smallReq("crafty", 60+uint64(i)))
			if err != nil {
				t.Errorf("good request %d failed: %v", i, err)
			} else if res == nil || res.S.Committed == 0 {
				t.Errorf("good request %d got an empty result", i)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, badErr = b.Execute(context.Background(), smallReq("no-such-bench", 60))
	}()
	wg.Wait()
	if !errors.Is(badErr, sim.ErrUnknownBenchmark) {
		t.Errorf("poisoned item got %v, want a sim.ErrUnknownBenchmark wrap", badErr)
	}
	if st := pool.Stats(); st.Crashes != 0 {
		t.Errorf("a typed per-item error crashed workers: %+v", st)
	}
}

// TestBatcherRandomizedArrivals is the property test: randomized arrival
// gaps, random cancellations, a deliberately awkward size/wait pair.
// Invariants: every batch respects the size bound; no request is ever
// dispatched twice; every caller that completed normally got exactly its
// own result; every canceled caller got either its own result (the
// cancel lost the race) or a sim.ErrCanceled wrap — never a sibling's
// result, never a foreign error.
func TestBatcherRandomizedArrivals(t *testing.T) {
	const n, size = 200, 8
	rng := rand.New(rand.NewSource(1))
	f := newFakeBulk()
	b := NewBatcher(f, size, 2*time.Millisecond)
	defer b.Close()

	type outcome struct {
		res      *sim.Result
		err      error
		canceled bool
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	for i := range n {
		delay := time.Duration(rng.Intn(3000)) * time.Microsecond
		doCancel := rng.Intn(10) == 0
		cancelAfter := time.Duration(rng.Intn(2000)) * time.Microsecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(delay)
			ctx := context.Background()
			if doCancel {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				timer := time.AfterFunc(cancelAfter, cancel)
				defer timer.Stop()
				defer cancel()
			}
			res, err := b.Execute(ctx, idReq(i))
			outcomes[i] = outcome{res: res, err: err, canceled: doCancel}
		}()
	}
	wg.Wait()

	for i, o := range outcomes {
		switch {
		case o.err == nil:
			if o.res == nil || o.res.StaticUops != i {
				t.Fatalf("caller %d got someone else's result: %+v", i, o.res)
			}
		case errors.Is(o.err, sim.ErrCanceled):
			if !o.canceled {
				t.Fatalf("caller %d was never canceled but got %v", i, o.err)
			}
		default:
			t.Fatalf("caller %d got unexpected error %v", i, o.err)
		}
	}
	batches, seen := f.snapshot()
	for _, batch := range batches {
		if len(batch) > size {
			t.Errorf("batch of %d items exceeds the size bound %d", len(batch), size)
		}
	}
	for id, times := range seen {
		if times != 1 {
			t.Errorf("request %d dispatched %d times, want exactly once", id, times)
		}
	}
}

// TestBatcherNoGoroutineLeaks: a workload with bursts, trickles and
// cancellations leaves no goroutines behind once the batcher is closed.
func TestBatcherNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	f := newFakeBulk()
	b := NewBatcher(f, 7, time.Millisecond)
	var wg sync.WaitGroup
	for i := range 100 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			if i%5 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				cancel()
			}
			b.Execute(ctx, idReq(i)) //nolint:errcheck // outcomes covered elsewhere
		}()
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatcherClosedRefuses: Execute after Close fails fast instead of
// queueing into a batch that will never flush.
func TestBatcherClosedRefuses(t *testing.T) {
	b := NewBatcher(newFakeBulk(), 4, time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Execute(context.Background(), idReq(1)); err == nil {
		t.Fatal("Execute on a closed batcher succeeded")
	}
}

// TestNewBatchedSpec: the batched: backend spec composes with every
// bulk-capable backend and refuses the rest.
func TestNewBatchedSpec(t *testing.T) {
	for _, spec := range []string{"batched:local", "batched:pool:2"} {
		be, err := New(spec)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		bb, ok := be.(*Batcher)
		if !ok {
			t.Fatalf("New(%q) returned %T, want *Batcher", spec, be)
		}
		res, err := bb.Execute(context.Background(), smallReq("crafty", 50))
		if err != nil || res == nil {
			t.Fatalf("New(%q).Execute: res=%v err=%v", spec, res, err)
		}
		bb.Close()
	}
	if _, err := New("batched:batched:local"); err == nil {
		t.Fatal("New accepted a doubly-batched spec")
	}
	if _, err := New("batched:nonsense"); err == nil {
		t.Fatal("New accepted batched: over an unknown backend")
	}
}
