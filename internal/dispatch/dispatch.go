// Package dispatch is the pluggable execution layer under sim.Runner:
// it decides *where* a validated sim.Request actually executes, while
// the runner above it keeps doing what it always did — validation,
// singleflight deduplication, the in-memory and sharded on-disk stores,
// streaming completion events. Because every backend runs the same
// deterministic simulator on the same request, the results (and
// therefore whole scenario RunReports) are bit-identical across
// backends; the integration tests pin that.
//
// Three backends implement the Backend interface:
//
//   - Local — the in-process path (sim.Simulate), the default;
//   - Pool — N crash-isolated worker subprocesses speaking
//     newline-delimited JSON frames over stdin/stdout. A worker that
//     dies mid-request is restarted and the request retried on another
//     worker; since only the parent process writes the stores, a crash
//     can never corrupt them;
//   - HTTP — a client for the regshared service (cmd/regshared), which
//     exposes the same runner over POST /v1/run, POST /v1/stream and
//     GET /v1/results/{key}.
//
// Commands select a backend with `-backend local|pool:N|http://addr`
// (see New) and wire it into their runner with Options:
//
//	backend, err := dispatch.New(*backendFlag)
//	...
//	defer backend.Close()
//	runner := sim.New(append(dispatch.Options(backend), sim.WithStore(store))...)
//
// Pool re-executes the running binary as its worker processes, so every
// command that accepts -backend calls MaybeWorker first thing in main.
package dispatch

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Backend executes validated simulation requests somewhere: in-process,
// on a pool of worker subprocesses, or on a remote service. Execute
// must be safe for concurrent use; the runner calls it from its worker
// pool. Close releases the backend's resources (worker processes, idle
// connections) once no Execute calls remain in flight.
type Backend interface {
	Execute(ctx context.Context, req sim.Request) (*sim.Result, error)
	Close() error
}

// New parses a -backend flag value:
//
//	"" or "local"        the in-process backend
//	"pool:N"             N worker subprocesses (N >= 1)
//	"http://addr[:port]" the regshared service at addr (https too)
//	"batched:<spec>"     a size+deadline Batcher over any of the above,
//	                     coalescing concurrent requests into one worker
//	                     frame / one bulk POST /v1/runs call per batch
func New(spec string) (Backend, error) {
	switch {
	case spec == "" || spec == "local":
		return Local{}, nil
	case strings.HasPrefix(spec, "batched:"):
		inner, err := New(strings.TrimPrefix(spec, "batched:"))
		if err != nil {
			return nil, err
		}
		bulk, ok := inner.(BulkBackend)
		if !ok {
			inner.Close()
			return nil, fmt.Errorf("dispatch: backend %q cannot batch", spec)
		}
		return NewBatcher(bulk, 0, 0), nil
	case strings.HasPrefix(spec, "pool:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "pool:"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("dispatch: bad pool size in %q (want pool:N with N >= 1)", spec)
		}
		return NewPool(n), nil
	case strings.HasPrefix(spec, "http://"), strings.HasPrefix(spec, "https://"):
		return NewHTTP(spec), nil
	default:
		return nil, fmt.Errorf("dispatch: unknown backend %q (known: local | pool:N | http://addr)", spec)
	}
}

// Options returns the sim.New options wiring b into a runner: the
// executor itself, plus a worker-pool width matching the backend's real
// concurrency. A Pool has exactly Size() workers; an HTTP backend's
// capacity lives on the server (which gates with its own runner), so
// the client just needs enough requests in flight to keep a large
// remote pool fed — a local GOMAXPROCS gate on a laptop would idle a
// 64-worker service.
// A Batcher needs the most width of all: its batches only fill when
// BatchSize requests are in flight per unit of underlying concurrency,
// so its width is the underlying backend's width times the batch size.
func Options(b Backend) []sim.Option {
	opts := []sim.Option{sim.WithExecutor(b.Execute)}
	if w := width(b); w > 0 {
		opts = append(opts, sim.WithWorkers(w))
	}
	return opts
}

// width is the runner worker count suited to a backend, or 0 to keep
// the runner's default.
func width(b Backend) int {
	switch be := b.(type) {
	case *Pool:
		return be.Size()
	case *HTTP:
		return max(16, 4*runtime.GOMAXPROCS(0))
	case *Batcher:
		w := width(be.be)
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		return be.size * w
	}
	return 0
}

// Local is the in-process backend: Execute is sim.Simulate on the
// calling process. It is the zero-cost default and what pool workers
// and the regshared service themselves bottom out in.
type Local struct{}

// Execute runs req on this process.
func (Local) Execute(ctx context.Context, req sim.Request) (*sim.Result, error) {
	return sim.Simulate(ctx, req)
}

// ExecuteBatch runs the batch in-process, sequentially — there is no
// wire to amortize, so the batch is just a loop with per-item outcomes.
// It exists so `batched:local` exercises the whole batching path with
// zero transport, which is what the property tests pin.
func (Local) ExecuteBatch(ctx context.Context, reqs []sim.Request) ([]BatchItem, error) {
	items := make([]BatchItem, len(reqs))
	for i := range reqs {
		res, err := sim.Simulate(ctx, reqs[i])
		items[i] = BatchItem{Res: res, Err: err}
	}
	return items, nil
}

// Close is a no-op: Local holds no resources.
func (Local) Close() error { return nil }
