package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestNewParsesBackendSpecs: the -backend flag grammar.
func TestNewParsesBackendSpecs(t *testing.T) {
	cases := []struct {
		spec    string
		want    string // type name, "" = error
		wantErr bool
	}{
		{spec: "", want: "local"},
		{spec: "local", want: "local"},
		{spec: "pool:4", want: "pool"},
		{spec: "pool:1", want: "pool"},
		{spec: "http://example:8347", want: "http"},
		{spec: "https://example", want: "http"},
		{spec: "pool:0", wantErr: true},
		{spec: "pool:-2", wantErr: true},
		{spec: "pool:x", wantErr: true},
		{spec: "pool:", wantErr: true},
		{spec: "tcp://example", wantErr: true},
		{spec: "remote", wantErr: true},
	}
	for _, c := range cases {
		b, err := New(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("New(%q): expected an error, got %T", c.spec, b)
			}
			continue
		}
		if err != nil {
			t.Errorf("New(%q): %v", c.spec, err)
			continue
		}
		var got string
		switch b.(type) {
		case Local:
			got = "local"
		case *Pool:
			got = "pool"
		case *HTTP:
			got = "http"
		}
		if got != c.want {
			t.Errorf("New(%q) = %T, want %s", c.spec, b, c.want)
		}
		b.Close()
	}
	if p, _ := New("pool:3"); p.(*Pool).Size() != 3 {
		t.Error("pool:3 did not size the pool at 3")
	}
}

// TestLocalBackendMatchesSimulate: the extracted Local backend is the
// in-process path, bit for bit.
func TestLocalBackendMatchesSimulate(t *testing.T) {
	req := smallReq("crafty", 3000)
	want, err := sim.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Local{}.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(t, got, want) {
		t.Fatal("Local backend result differs from sim.Simulate")
	}
}

// TestLocalBackendTypedErrors: validation errors pass through typed.
func TestLocalBackendTypedErrors(t *testing.T) {
	_, err := Local{}.Execute(context.Background(), smallReq("no-such-bench", 3000))
	if !errors.Is(err, sim.ErrUnknownBenchmark) {
		t.Fatalf("got %v, want ErrUnknownBenchmark", err)
	}
	req := smallReq("crafty", 3000)
	req.Measure = 0
	_, err = Local{}.Execute(context.Background(), req)
	if !errors.Is(err, sim.ErrBadConfig) {
		t.Fatalf("got %v, want ErrBadConfig", err)
	}
}

// TestWireErrorTaxonomy: wire kinds re-wrap the sim sentinels — except
// a remote cancellation, which must NOT look like a local interrupt
// (commands translate sim.ErrCanceled into "interrupted"/exit 130, and
// this caller's context was never canceled).
func TestWireErrorTaxonomy(t *testing.T) {
	if err := wireError(kindUnknownBenchmark, "m"); !errors.Is(err, sim.ErrUnknownBenchmark) {
		t.Fatalf("unknown_benchmark: %v", err)
	}
	if err := wireError(kindBadConfig, "m"); !errors.Is(err, sim.ErrBadConfig) {
		t.Fatalf("bad_config: %v", err)
	}
	if err := wireError(kindCanceled, "m"); errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("a remote cancellation must not re-wrap ErrCanceled: %v", err)
	}
	if err := wireError("kind-from-the-future", "the message"); err == nil || err.Error() != "the message" {
		t.Fatalf("unknown kind must keep the message: %v", err)
	}
}

// resultsEqual compares two results through their canonical JSON form —
// the same representation the wire and the store use, so "equal" here
// is exactly the bit-identical contract the backends promise.
func resultsEqual(t *testing.T, a, b *sim.Result) bool {
	t.Helper()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(aj) == string(bj)
}
