package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// warmStore fills a store with one result per key.
func warmStore(t *testing.T, s *sim.Store, keys ...string) {
	t.Helper()
	for _, k := range keys {
		if err := s.Put(context.Background(), k, &sim.Result{Bench: k, StaticUops: 42, IPC: 1.5}); err != nil {
			t.Fatal(err)
		}
	}
}

// syncService exposes a store over the federation endpoints.
func syncService(t *testing.T, store *sim.Store) (*httptest.Server, *countingMux) {
	t.Helper()
	counter := &countingMux{inner: NewService(sim.New(), store).Handler(), counts: map[string]int{}}
	ts := httptest.NewServer(counter)
	t.Cleanup(ts.Close)
	return ts, counter
}

func (c *countingMux) countPrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, v := range c.counts {
		if strings.HasPrefix(k, prefix) {
			n += v
		}
	}
	return n
}

// TestSyncTwoHostsConverge: two stores with a shared warm set and
// disjoint extras reconcile bidirectionally — the client pulls what
// only the server had, pushes what only it had, transfers nothing that
// both sides already held, and afterwards the two Merkle roots are
// equal. A second sync is a single hash exchange and zero transfers.
func TestSyncTwoHostsConverge(t *testing.T) {
	common := []string{"c-1", "c-2", "c-3", "c-4"}
	aOnly := []string{"a-only-1", "a-only-2", "a-only-3"}
	bOnly := []string{"b-only-1", "b-only-2"}

	mine := sim.NewStore(t.TempDir())
	warmStore(t, mine, append(append([]string{}, common...), aOnly...)...)
	theirs := sim.NewStore(t.TempDir())
	warmStore(t, theirs, append(append([]string{}, common...), bOnly...)...)

	ts, counter := syncService(t, theirs)
	h := NewHTTP(ts.URL)
	defer h.Close()

	st, err := h.Sync(context.Background(), mine)
	if err != nil {
		t.Fatal(err)
	}
	if st.InSync {
		t.Fatal("first sync claims the stores already agreed")
	}
	if st.Pulled != len(bOnly) || st.Pushed != len(aOnly) || st.PullRejected != 0 || st.PushRejected != 0 {
		t.Fatalf("sync stats %+v: want pulled %d, pushed %d, no rejections", st, len(bOnly), len(aOnly))
	}

	// Only the missing envelopes crossed the wire: one GET per pulled
	// entry, never one for an entry both sides held.
	if n := counter.countPrefix("GET /v1/store/"); n != len(bOnly) {
		t.Errorf("sync fetched %d envelopes, want exactly the %d missing ones", n, len(bOnly))
	}

	mm, err := mine.Manifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tm, err := theirs.Manifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if mm.Root != tm.Root {
		t.Fatal("roots did not converge after sync")
	}
	if mm.Entries != len(common)+len(aOnly)+len(bOnly) {
		t.Fatalf("converged store counts %d entries, want %d", mm.Entries, len(common)+len(aOnly)+len(bOnly))
	}
	// The synced results are servable: every key loads from both sides.
	for _, k := range append(append(append([]string{}, common...), aOnly...), bOnly...) {
		if res, ok := mine.Load(context.Background(), k); !ok || res.Bench != k {
			t.Fatalf("key %q not loadable from the client store after sync", k)
		}
		if res, ok := theirs.Load(context.Background(), k); !ok || res.Bench != k {
			t.Fatalf("key %q not loadable from the server store after sync", k)
		}
	}

	st2, err := h.Sync(context.Background(), mine)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.InSync || st2.HashExchanges != 1 || st2.Pulled != 0 || st2.Pushed != 0 {
		t.Fatalf("second sync %+v: want in-sync after exactly one hash exchange and no transfers", st2)
	}
}

// TestSyncSingleShardDiffIsLogarithmic pins the wire complexity: when
// the two stores differ in exactly one shard, the walk costs exactly
// 1 + ManifestHeight hash exchanges (summary + one node per level) —
// O(log shards), not a shard-list scan.
func TestSyncSingleShardDiffIsLogarithmic(t *testing.T) {
	shared := []string{"s-1", "s-2", "s-3", "s-4", "s-5"}
	mine := sim.NewStore(t.TempDir())
	warmStore(t, mine, shared...)
	theirs := sim.NewStore(t.TempDir())
	warmStore(t, theirs, shared...)
	warmStore(t, theirs, "the-one-extra")

	ts, _ := syncService(t, theirs)
	h := NewHTTP(ts.URL)
	defer h.Close()

	st, err := h.Sync(context.Background(), mine)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsDiffer != 1 {
		t.Fatalf("one extra key should differ in exactly one shard, got %d", st.ShardsDiffer)
	}
	if want := 1 + sim.ManifestHeight; st.HashExchanges != want {
		t.Fatalf("single-shard diff cost %d hash exchanges, want exactly %d", st.HashExchanges, want)
	}
	if st.Pulled != 1 || st.Pushed != 0 {
		t.Fatalf("sync stats %+v: want exactly one pulled envelope", st)
	}
	mm, _ := mine.Manifest(context.Background())
	tm, _ := theirs.Manifest(context.Background())
	if mm.Root != tm.Root {
		t.Fatal("roots did not converge")
	}
}

// TestSyncForeignEnvelopeRejected: an envelope whose simulator version
// is not the receiver's is refused by the receiving store's validation
// — counted, not fatal — and the rest of the sync still completes.
func TestSyncForeignEnvelopeRejected(t *testing.T) {
	mine := sim.NewStore(t.TempDir())
	warmStore(t, mine, "good-1")
	// Plant a forged envelope in the client store by hand: a plausible
	// 64-hex name, a foreign sim_version. ShardList picks it up (it only
	// screens names), so Sync will try to push it.
	foreign := map[string]any{
		"schema":      "rs1",
		"sim_version": "s1-0000000000000000000000000000000000000000",
		"key":         "forged-key",
		"result":      map[string]any{"Bench": "forged"},
	}
	data, err := json.Marshal(foreign)
	if err != nil {
		t.Fatal(err)
	}
	name := strings.Repeat("ab", 32)
	dir := filepath.Join(mine.Dir(), name[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	theirs := sim.NewStore(t.TempDir())
	ts, _ := syncService(t, theirs)
	h := NewHTTP(ts.URL)
	defer h.Close()

	st, err := h.Sync(context.Background(), mine)
	if err != nil {
		t.Fatal(err)
	}
	if st.PushRejected != 1 {
		t.Fatalf("sync stats %+v: want exactly one rejected push", st)
	}
	if st.Pushed != 1 {
		t.Fatalf("sync stats %+v: the legitimate envelope should still push", st)
	}
	if _, ok := theirs.Load(context.Background(), "good-1"); !ok {
		t.Fatal("legitimate envelope did not arrive")
	}
	if _, err := theirs.ReadRaw(context.Background(), name); err == nil {
		t.Fatal("forged envelope landed in the peer store")
	}
}

// TestSyncMetricsCounters: the server books sync activity — envelopes
// stored, rejected and served — in /metrics.
func TestSyncMetricsCounters(t *testing.T) {
	mine := sim.NewStore(t.TempDir())
	warmStore(t, mine, "push-me")
	theirs := sim.NewStore(t.TempDir())
	warmStore(t, theirs, "pull-me-1", "pull-me-2")

	ts, _ := syncService(t, theirs)
	h := NewHTTP(ts.URL)
	defer h.Close()
	if _, err := h.Sync(context.Background(), mine); err != nil {
		t.Fatal(err)
	}
	snap, err := h.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.SyncStored != 1 || snap.SyncServed != 2 || snap.SyncRejected != 0 {
		t.Fatalf("sync counters stored=%d served=%d rejected=%d, want 1, 2, 0",
			snap.SyncStored, snap.SyncServed, snap.SyncRejected)
	}
}

// TestBulkEndpointPerItemShedding: when the admission gate is full, a
// bulk batch's items are shed individually — in-band 429 items carrying
// the Retry-After hint — while the batch call itself stays a 200 and
// other work is unaffected.
func TestBulkEndpointPerItemShedding(t *testing.T) {
	ts, _, entered, release := blockedService(t, 1, 0)
	h := NewHTTP(ts.URL)
	defer h.Close()
	h.SetClientID("bulk-client")

	// Occupy the only slot.
	holder := NewHTTP(ts.URL)
	defer holder.Close()
	holder.SetClientID("holder")
	done := make(chan error, 1)
	go func() {
		_, err := holder.Execute(context.Background(), smallReq("crafty", 3000))
		done <- err
	}()
	<-entered

	items, err := h.ExecuteBatch(context.Background(),
		[]sim.Request{smallReq("crafty", 3100), smallReq("crafty", 3200)})
	if err != nil {
		t.Fatalf("bulk call failed as a whole: %v", err)
	}
	for i, it := range items {
		if !errors.Is(it.Err, ErrOverloaded) {
			t.Errorf("item %d: got %v, want an in-band ErrOverloaded", i, it.Err)
			continue
		}
		if _, ok := RetryAfter(it.Err); !ok {
			t.Errorf("item %d: in-band 429 lost its Retry-After hint", i)
		}
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
}

// TestBulkEndpointPoisonedItem: one invalid request in a bulk batch
// comes back as that item's typed error over the wire; siblings carry
// results.
func TestBulkEndpointPoisonedItem(t *testing.T) {
	ts := httptest.NewServer(NewService(sim.New(), nil).Handler())
	defer ts.Close()
	h := NewHTTP(ts.URL)
	defer h.Close()

	items, err := h.ExecuteBatch(context.Background(), []sim.Request{
		smallReq("crafty", 80),
		smallReq("no-such-bench", 80),
		smallReq("crafty", 90),
	})
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err != nil || items[0].Res == nil {
		t.Errorf("item 0: res=%v err=%v, want a result", items[0].Res, items[0].Err)
	}
	if !errors.Is(items[1].Err, sim.ErrUnknownBenchmark) {
		t.Errorf("item 1: got %v, want a sim.ErrUnknownBenchmark wrap", items[1].Err)
	}
	if items[2].Err != nil || items[2].Res == nil {
		t.Errorf("item 2: res=%v err=%v, want a result", items[2].Res, items[2].Err)
	}
	if fmt.Sprint(items[0].Res.IPC) != fmt.Sprint(items[2].Res.IPC) {
		// Same bench, different measure: just confirm both are real runs.
		_ = items[2]
	}
}
