package dispatch

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/sim"
)

// truncatingWriter fails every Write after the first n: the service-side
// view of a connection that died mid-stream, injected deterministically
// instead of racing a real connection teardown. The service's encoder
// hits the write error, latches it, and — the contract under test —
// never emits the completion trailer.
type truncatingWriter struct {
	http.ResponseWriter
	writesLeft int
}

var errInjectedCut = errors.New("injected: connection cut")

func (t *truncatingWriter) Write(p []byte) (int, error) {
	if t.writesLeft <= 0 {
		return 0, errInjectedCut
	}
	t.writesLeft--
	return t.ResponseWriter.Write(p)
}

// TestStreamTruncationDetectedAndResumable is the end-to-end pin for the
// trailer protocol:
//
//  1. A /v1/stream response cut mid-batch surfaces ErrTruncatedStream on
//     the client — not a silent short-but-plausible success.
//  2. The events delivered before the cut are real results.
//  3. A rerun against the service's store resumes the whole batch as
//     store hits, bit-identical to an uninterrupted local run.
func TestStreamTruncationDetectedAndResumable(t *testing.T) {
	reqs := []sim.Request{
		smallReq("crafty", 3000),
		smallReq("crafty", 3500),
		smallReq("gzip", 3000),
		smallReq("gzip", 3500),
	}
	ctx := context.Background()

	// Uninterrupted local control results.
	want := make([]*sim.Result, len(reqs))
	for i, req := range reqs {
		res, err := sim.Simulate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	// Service whose /v1/stream connection "dies" after two event lines.
	// json.Encoder issues one Write per NDJSON line, so a write budget of
	// 2 lets events 0 and 1 through and cuts the stream at event 2.
	store := sim.NewStore(t.TempDir())
	svc := NewService(sim.New(sim.WithStore(store)), store)
	inner := svc.Handler()
	cut := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stream" {
			w = &truncatingWriter{ResponseWriter: w, writesLeft: 2}
		}
		inner.ServeHTTP(w, r)
	}))
	defer cut.Close()

	h := NewHTTP(cut.URL)
	defer h.Close()
	var got []StreamEvent
	n, err := h.Stream(ctx, reqs, func(ev StreamEvent) { got = append(got, ev) })
	if !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("cut stream: got %v, want ErrTruncatedStream", err)
	}
	if n != 2 || len(got) != 2 {
		t.Fatalf("cut stream delivered %d events (sink saw %d), want 2", n, len(got))
	}
	for _, ev := range got {
		if ev.Err != nil || ev.Result == nil {
			t.Fatalf("pre-cut event %d: err %v, result %v — delivered events must be whole", ev.Index, ev.Err, ev.Result)
		}
		if !resultsEqual(t, ev.Result, want[ev.Index]) {
			t.Fatalf("pre-cut event %d differs from local control", ev.Index)
		}
	}

	// The cut was transport-only: the service finished (and stored) the
	// whole batch. A rerun against the same store — fresh runner, fresh
	// server, healthy connection — resumes everything as store hits and
	// reproduces the control results bit-identically.
	resumed := httptest.NewServer(NewService(sim.New(sim.WithStore(store)), store).Handler())
	defer resumed.Close()
	h2 := NewHTTP(resumed.URL)
	defer h2.Close()
	events := make([]StreamEvent, 0, len(reqs))
	n, err = h2.Stream(ctx, reqs, func(ev StreamEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("resumed stream: %v", err)
	}
	if n != len(reqs) {
		t.Fatalf("resumed stream delivered %d events, want %d", n, len(reqs))
	}
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("resumed event %d: %v", ev.Index, ev.Err)
		}
		if ev.Source != sim.SourceStore.String() {
			t.Fatalf("resumed event %d came from %q, want %q (the store resume)", ev.Index, ev.Source, sim.SourceStore)
		}
		if !resultsEqual(t, ev.Result, want[ev.Index]) {
			t.Fatalf("resumed event %d differs from local control — store resume must be bit-identical", ev.Index)
		}
	}
}

// TestStreamCompleteCarriesTrailer is the happy-path counterpart: an
// uninterrupted client Stream sees every event and no truncation error,
// which can only happen when the trailer arrived and its count matched.
func TestStreamCompleteCarriesTrailer(t *testing.T) {
	ts, _ := newTestService(t)
	h := NewHTTP(ts.URL)
	defer h.Close()
	reqs := []sim.Request{smallReq("crafty", 3000), smallReq("gzip", 3000)}
	n, err := h.Stream(context.Background(), reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(reqs) {
		t.Fatalf("delivered %d events, want %d", n, len(reqs))
	}
}

// TestTrailerCountMismatchIsTruncation: a trailer whose count disagrees
// with the delivered events is truncation too — a proxy that dropped a
// line must not pass for a clean stream.
func TestTrailerCountMismatchIsTruncation(t *testing.T) {
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		var buf bytes.Buffer
		buf.WriteString(`{"index":0,"bench":"crafty","source":"simulated","result":null}` + "\n")
		buf.WriteString(`{"done":true,"events":2}` + "\n")
		w.Write(buf.Bytes())
	}))
	defer lying.Close()

	h := NewHTTP(lying.URL)
	defer h.Close()
	n, err := h.Stream(context.Background(), []sim.Request{smallReq("crafty", 3000), smallReq("gzip", 3000)}, nil)
	if !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("count mismatch: got %v, want ErrTruncatedStream", err)
	}
	if n != 1 {
		t.Fatalf("saw %d events, want 1", n)
	}
}
