package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"sync"

	"repro/internal/sim"
)

// maxCrashRetries bounds how many times one request is re-run after its
// worker died. A request that deterministically kills every worker it
// lands on (a simulator bug) must surface as an error, not respawn
// processes forever.
const maxCrashRetries = 2

// PoolStats counts the pool's lifecycle events, for tests and -v
// diagnostics.
type PoolStats struct {
	Spawned int // worker processes started
	Crashes int // workers that died or broke protocol mid-request
	Retries int // requests re-run on another worker after a crash
}

// Pool executes requests on a fixed number of worker subprocesses —
// re-executions of the current binary (see MaybeWorker) speaking
// newline-delimited JSON frames over stdin/stdout. Workers are spawned
// lazily and serve one request at a time, so a simulator crash is
// isolated to its own process: the pool restarts the worker and retries
// the request elsewhere, and since only the parent writes the result
// stores, a crash can never leave a partial store entry behind.
type Pool struct {
	size  int
	exe   string
	slots chan struct{}

	mu     sync.Mutex
	idle   []*worker
	live   map[*worker]struct{}
	closed bool
	stats  PoolStats
}

// NewPool builds a pool of n workers (n < 1 is coerced to 1). The
// worker processes start lazily on first use.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	exe, err := os.Executable()
	if err != nil {
		// Spawning will fail with a clear error; remember the empty path.
		exe = ""
	}
	return &Pool{
		size:  n,
		exe:   exe,
		slots: make(chan struct{}, n),
		live:  make(map[*worker]struct{}),
	}
}

// Size returns the pool's worker count.
func (p *Pool) Size() int { return p.size }

// Stats returns a snapshot of the pool's lifecycle counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// PIDs returns the process IDs of the pool's running workers, idle and
// leased alike — diagnostics, and the handle the crash-recovery tests
// use to kill workers mid-request.
func (p *Pool) PIDs() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	pids := make([]int, 0, len(p.live))
	for w := range p.live {
		if w.cmd.Process != nil {
			pids = append(pids, w.cmd.Process.Pid)
		}
	}
	sort.Ints(pids)
	return pids
}

// Execute runs req on an idle worker, retrying on a fresh worker if the
// one serving it crashes. Typed simulation errors (bad config, unknown
// benchmark) come back in-band from the worker and are not retried;
// transport failures are treated as crashes. Cancellation kills the
// serving worker — there is no way to interrupt its cycle loop from
// here — and returns a sim.ErrCanceled wrap.
func (p *Pool) Execute(ctx context.Context, req sim.Request) (*sim.Result, error) {
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, canceledErr(req.Bench, ctxCause(ctx))
	}
	defer func() { <-p.slots }()

	var lastComm error
	for attempt := 0; ; attempt++ {
		w, err := p.lease()
		if err != nil {
			return nil, err
		}
		res, appErr, commErr := w.roundTrip(ctx, req)
		switch {
		case commErr == nil && appErr == nil:
			p.putIdle(w)
			return res, nil
		case appErr != nil:
			// The worker is healthy; the request itself failed.
			p.putIdle(w)
			return nil, appErr
		}
		// Transport broken: the worker is gone or talking garbage.
		p.retire(w)
		if ctx.Err() != nil {
			// Our cancellation killed the worker; that is not a crash.
			return nil, canceledErr(req.Bench, ctxCause(ctx))
		}
		lastComm = commErr
		p.mu.Lock()
		p.stats.Crashes++
		retry := attempt < maxCrashRetries
		if retry {
			p.stats.Retries++
		}
		p.mu.Unlock()
		if !retry {
			return nil, fmt.Errorf("dispatch: pool: %s failed after %d worker crashes: %w",
				req.Bench, attempt+1, lastComm)
		}
	}
}

// ExecuteBatch runs a coalesced batch as one stdin frame on one worker
// (one lease, one slot — the batch is the scheduling unit). Typed
// per-item errors come back in-band and cannot affect siblings. If the
// worker dies mid-frame the pool cannot tell which member killed it, so
// instead of retrying the whole frame — which would crash two more
// workers and then fail every member for one poisoned item — it falls
// back to per-item Execute, where the normal crash-retry machinery
// isolates the failure to the request that caused it.
func (p *Pool) ExecuteBatch(ctx context.Context, reqs []sim.Request) ([]BatchItem, error) {
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, canceledErr("batch", ctxCause(ctx))
	}
	w, err := p.lease()
	if err != nil {
		<-p.slots
		return nil, err
	}
	items, commErr := w.roundTripBatch(ctx, reqs)
	if commErr == nil {
		p.putIdle(w)
		<-p.slots
		return items, nil
	}
	p.retire(w)
	<-p.slots
	if ctx.Err() != nil {
		return nil, canceledErr("batch", ctxCause(ctx))
	}
	p.mu.Lock()
	p.stats.Crashes++
	p.mu.Unlock()
	out := make([]BatchItem, len(reqs))
	for i := range reqs {
		res, rerr := p.Execute(ctx, reqs[i])
		out[i] = BatchItem{Res: res, Err: rerr}
	}
	return out, nil
}

// Close kills every worker and marks the pool closed. Call it only
// after all Execute calls have returned.
func (p *Pool) Close() error {
	p.mu.Lock()
	workers := make([]*worker, 0, len(p.live))
	//repro:allow nodeterm -- shutdown fan-out: every worker is killed, order is unobservable
	for w := range p.live {
		workers = append(workers, w)
	}
	p.idle = nil
	p.live = map[*worker]struct{}{}
	p.closed = true
	p.mu.Unlock()
	for _, w := range workers {
		w.shutdown()
	}
	return nil
}

// lease pops an idle worker or spawns one. The slots channel already
// bounds concurrent leases at the pool size, so spawning here can never
// exceed it.
func (p *Pool) lease() (*worker, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("dispatch: pool is closed")
	}
	if n := len(p.idle); n > 0 {
		w := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return w, nil
	}
	p.mu.Unlock()

	w, err := p.spawn()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		w.shutdown()
		return nil, errors.New("dispatch: pool is closed")
	}
	p.live[w] = struct{}{}
	p.stats.Spawned++
	p.mu.Unlock()
	return w, nil
}

// putIdle returns a healthy worker to the idle stack.
func (p *Pool) putIdle(w *worker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		go w.shutdown()
		return
	}
	p.idle = append(p.idle, w)
}

// retire kills a broken worker and forgets it.
func (p *Pool) retire(w *worker) {
	p.mu.Lock()
	delete(p.live, w)
	p.mu.Unlock()
	w.kill()
}

// spawn starts one worker subprocess: this binary, flagged as a worker
// through the environment (see MaybeWorker), with stderr passed
// through for diagnostics.
func (p *Pool) spawn() (*worker, error) {
	if p.exe == "" {
		return nil, errors.New("dispatch: pool: cannot locate own executable to spawn workers")
	}
	cmd := exec.Command(p.exe)
	cmd.Env = append(os.Environ(), workerEnv+"=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dispatch: pool: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dispatch: pool: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dispatch: pool: spawning worker: %w", err)
	}
	return &worker{
		cmd:   cmd,
		stdin: stdin,
		enc:   json.NewEncoder(stdin),
		dec:   json.NewDecoder(stdout),
	}, nil
}

// worker is one subprocess: the frame codec plus the process handle.
// A worker serves one request at a time (the pool leases it
// exclusively), so the frame ID is a protocol check, not a multiplexer.
type worker struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	enc    *json.Encoder
	dec    *json.Decoder
	nextID uint64
	waited sync.Once
}

// roundTrip sends req and waits for its response frame. The three
// returns separate the failure domains: appErr is an in-band typed
// error from a healthy worker (not retriable), commErr a broken
// transport (worker crashed — retriable). Cancellation kills the
// process to unblock the read and surfaces as commErr with ctx.Err()
// set; Execute checks the context to tell the two apart.
func (w *worker) roundTrip(ctx context.Context, req sim.Request) (res *sim.Result, appErr, commErr error) {
	w.nextID++
	if err := w.enc.Encode(workerRequest{ID: w.nextID, Req: req}); err != nil {
		return nil, nil, fmt.Errorf("sending frame: %w", err)
	}
	type outcome struct {
		resp workerResponse
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		var resp workerResponse
		err := w.dec.Decode(&resp)
		ch <- outcome{resp, err}
	}()
	select {
	case <-ctx.Done():
		w.kill() // unblocks the decode goroutine
		return nil, nil, ctx.Err()
	case o := <-ch:
		switch {
		case o.err != nil:
			return nil, nil, fmt.Errorf("reading frame: %w", o.err)
		case o.resp.ID != w.nextID:
			return nil, nil, fmt.Errorf("worker answered frame %d, want %d", o.resp.ID, w.nextID)
		case o.resp.Err != "":
			return nil, wireError(o.resp.Kind, o.resp.Err), nil
		case o.resp.Result == nil:
			return nil, nil, errors.New("worker frame carries neither result nor error")
		default:
			return o.resp.Result, nil, nil
		}
	}
}

// roundTripBatch sends a whole batch as one frame and decodes the
// per-item outcomes. Any transport fault — including a crash caused by
// one member — is a commErr for the frame as a whole; the pool decides
// how to isolate it.
func (w *worker) roundTripBatch(ctx context.Context, reqs []sim.Request) (items []BatchItem, commErr error) {
	w.nextID++
	if err := w.enc.Encode(workerRequest{ID: w.nextID, Reqs: reqs}); err != nil {
		return nil, fmt.Errorf("sending batch frame: %w", err)
	}
	type outcome struct {
		resp workerResponse
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		var resp workerResponse
		err := w.dec.Decode(&resp)
		ch <- outcome{resp, err}
	}()
	select {
	case <-ctx.Done():
		w.kill() // unblocks the decode goroutine
		return nil, ctx.Err()
	case o := <-ch:
		switch {
		case o.err != nil:
			return nil, fmt.Errorf("reading batch frame: %w", o.err)
		case o.resp.ID != w.nextID:
			return nil, fmt.Errorf("worker answered frame %d, want %d", o.resp.ID, w.nextID)
		case len(o.resp.Items) != len(reqs):
			return nil, fmt.Errorf("worker answered %d items for %d requests", len(o.resp.Items), len(reqs))
		}
		items = make([]BatchItem, len(reqs))
		for i := range o.resp.Items {
			wi := &o.resp.Items[i]
			switch {
			case wi.Err != "":
				items[i] = BatchItem{Err: wireError(wi.Kind, wi.Err)}
			case wi.Result == nil:
				items[i] = BatchItem{Err: errors.New("worker batch item carries neither result nor error")}
			default:
				items[i] = BatchItem{Res: wi.Result}
			}
		}
		return items, nil
	}
}

// kill forcibly terminates the worker process and reaps it.
func (w *worker) kill() {
	w.stdin.Close()
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	w.waited.Do(func() { w.cmd.Wait() })
}

// shutdown closes the worker's stdin — the loop in ServeWorker exits
// cleanly on EOF — and reaps the process.
func (w *worker) shutdown() {
	w.stdin.Close()
	w.waited.Do(func() { w.cmd.Wait() })
}
