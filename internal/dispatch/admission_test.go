package dispatch

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// blockedService builds a service whose executor parks every simulation
// until release is closed, over a tight admission gate — the setup for
// driving the queue into overflow deterministically.
func blockedService(t *testing.T, maxInflight, maxQueue int) (*httptest.Server, *Service, chan struct{}, chan struct{}) {
	t.Helper()
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	exec := func(ctx context.Context, req sim.Request) (*sim.Result, error) {
		entered <- struct{}{}
		select {
		case <-release:
			return &sim.Result{}, nil
		case <-ctx.Done():
			return nil, fmt.Errorf("test exec: %w: %w", sim.ErrCanceled, ctxCause(ctx))
		}
	}
	runner := sim.New(sim.WithExecutor(exec), sim.WithWorkers(8))
	svc := NewService(runner, nil, WithAdmission(maxInflight, maxQueue))
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts, svc, entered, release
}

// waitFor polls cond for up to ~2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for range 2000 {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionQueueOverflow429: with max-inflight 1 and max-queue 1, a
// third concurrent request is refused with 429, a Retry-After hint, and
// the typed ErrOverloaded on the Go client — and /metrics reports the
// in-flight and queue-depth gauges while the jam is live.
func TestAdmissionQueueOverflow429(t *testing.T) {
	ts, svc, entered, release := blockedService(t, 1, 1)
	ctx := context.Background()

	// Requests need distinct keys or the runner's dedup would merge them
	// before they ever occupy separate admission slots.
	h1 := NewHTTP(ts.URL)
	defer h1.Close()
	h1.SetClientID("client-a")
	done1 := make(chan error, 1)
	go func() {
		_, err := h1.Execute(ctx, smallReq("crafty", 3000))
		done1 <- err
	}()
	<-entered // request 1 holds the only execution slot

	h2 := NewHTTP(ts.URL)
	defer h2.Close()
	h2.SetClientID("client-b")
	done2 := make(chan error, 1)
	go func() {
		_, err := h2.Execute(ctx, smallReq("crafty", 3500))
		done2 <- err
	}()
	waitFor(t, "request 2 to queue", func() bool { return svc.adm.depth() == 1 })

	// The jam is observable: /metrics reports the live gauges.
	hm := NewHTTP(ts.URL)
	defer hm.Close()
	snap, err := hm.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.InFlight != 1 || snap.QueueDepth != 1 {
		t.Fatalf("mid-jam gauges: in-flight %d, queue %d; want 1, 1", snap.InFlight, snap.QueueDepth)
	}

	// Slot taken, queue full: the third request bounces.
	h3 := NewHTTP(ts.URL)
	defer h3.Close()
	h3.SetClientID("client-c")
	_, err = h3.Execute(ctx, smallReq("crafty", 4000))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow: got %v, want ErrOverloaded", err)
	}
	ra, ok := RetryAfter(err)
	if !ok || ra < time.Second {
		t.Fatalf("overflow: Retry-After hint %v (present %v), want ≥1s", ra, ok)
	}

	// Draining the jam lets both held requests finish cleanly.
	close(release)
	if err := <-done1; err != nil {
		t.Fatalf("request 1: %v", err)
	}
	<-entered // request 2 reaches the executor after the slot transfers
	if err := <-done2; err != nil {
		t.Fatalf("request 2: %v", err)
	}

	// The rejection is on the books.
	snap, err = hm.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Rejected != 1 || snap.Completed != 2 || snap.InFlight != 0 || snap.QueueDepth != 0 {
		t.Fatalf("post-drain snapshot: rejected %d completed %d in-flight %d queue %d; want 1, 2, 0, 0",
			snap.Rejected, snap.Completed, snap.InFlight, snap.QueueDepth)
	}
}

// TestAdmissionFairDequeue pins the per-client round-robin: with client
// A's 100 requests and client B's 100 requests all queued behind one
// slot, grants alternate A,B,A,B… — B waits behind one A request, not
// behind A's whole sweep.
func TestAdmissionFairDequeue(t *testing.T) {
	a := newAdmission(1, 1000)
	ctx := context.Background()
	if err := a.acquire(ctx, "holder"); err != nil {
		t.Fatal(err)
	}

	const perClient = 100
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(client string) {
		wg.Add(1)
		before := a.depth()
		go func() {
			defer wg.Done()
			if err := a.acquire(ctx, client); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, client)
			mu.Unlock()
			a.release()
		}()
		// Serialize enqueue order so the FIFO contents are deterministic.
		waitFor(t, "waiter to enqueue", func() bool { return a.depth() == before+1 })
	}
	for range perClient {
		enqueue("A")
	}
	for range perClient {
		enqueue("B")
	}

	a.release() // hand the slot to the queue; grants cascade from here
	wg.Wait()

	if len(order) != 2*perClient {
		t.Fatalf("granted %d, want %d", len(order), 2*perClient)
	}
	for i, c := range order {
		want := "A"
		if i%2 == 1 {
			want = "B"
		}
		if c != want {
			t.Fatalf("grant %d went to %s, want %s (alternation broken: %v…)", i, c, want, order[:i+1])
		}
	}
}

// TestAdmissionCancelWhileQueued: a waiter that gives up leaves no
// phantom queue entry and no leaked slot.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 10)
	if err := a.acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx, "quitter") }()
	waitFor(t, "waiter to enqueue", func() bool { return a.depth() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("canceled waiter: got %v, want ErrCanceled", err)
	}
	if d := a.depth(); d != 0 {
		t.Fatalf("queue depth %d after cancellation, want 0", d)
	}

	// The slot still exists: release it and a fresh acquire is instant.
	a.release()
	if err := a.acquire(context.Background(), "next"); err != nil {
		t.Fatalf("acquire after drain: %v", err)
	}
	a.release()
}
