package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// DefaultBatchSize and DefaultBatchWait are the Batcher defaults behind
// the `batched:` backend spec: big enough that a grid's wire cost drops
// by an order of magnitude, short enough that a lone interactive
// request is not held hostage to a batch that will never fill.
const (
	DefaultBatchSize = 32
	DefaultBatchWait = 2 * time.Millisecond
)

// BatchItem is one request's outcome inside a bulk execution: exactly
// one of Res and Err is set.
type BatchItem struct {
	Res *sim.Result
	Err error
}

// BulkBackend is a Backend that can execute a whole batch of requests
// in one wire operation: one worker frame for a Pool, one POST /v1/runs
// for HTTP. ExecuteBatch returns per-item outcomes aligned 1:1 with
// reqs — a typed per-item error (bad config, unknown benchmark,
// admission rejection) travels inside its item and must not affect
// siblings; only a transport-level failure fails the call itself.
type BulkBackend interface {
	Backend
	ExecuteBatch(ctx context.Context, reqs []sim.Request) ([]BatchItem, error)
}

// BatcherStats counts the batcher's flush behavior, for tests and
// diagnostics.
type BatcherStats struct {
	Batches         int // flushes that dispatched at least one item
	Items           int // items dispatched across all batches
	SizeFlushes     int // flushes triggered by reaching BatchSize
	DeadlineFlushes int // flushes triggered by MaxWait expiring
	MaxBatch        int // largest batch dispatched
}

// Batcher coalesces concurrent Execute calls into bulk operations on a
// BulkBackend: requests accumulate until either BatchSize items are
// pending or MaxWait has passed since the first pending item — the
// classic size+deadline batcher — and flush as one ExecuteBatch call.
// Each caller waits on its own response channel, so outcomes, errors
// and cancellation stay per-item:
//
//   - a caller whose context is canceled while its item is still
//     pending withdraws the item — it is never sent;
//   - a caller canceled after the flush returns immediately; the batch
//     keeps running for its siblings, and the batch's own context is
//     canceled only when every member's context is;
//   - a poisoned item (bad config, unknown benchmark) comes back as
//     that item's typed error while its siblings carry results.
//
// The wire win is what the regshared fleet needs: a 648-cell grid over
// the HTTP backend collapses from 648 POST /v1/run round trips into
// ceil(648/BatchSize) POST /v1/runs calls.
type Batcher struct {
	be   BulkBackend
	size int
	wait time.Duration

	mu      sync.Mutex
	pending []*pendingItem
	gen     uint64 // batch generation; invalidates stale deadline flushes
	timer   *time.Timer
	closed  bool
	stats   BatcherStats
}

// pendingItem is one Execute call waiting for its batch: the request,
// the caller's context (for the batch-wide cancellation vote) and the
// buffered channel its outcome is delivered on.
type pendingItem struct {
	req  sim.Request
	ctx  context.Context
	done chan BatchItem // buffered: a flush never blocks on a gone caller
}

// NewBatcher wraps be in a size+deadline batcher. size < 1 selects
// DefaultBatchSize; wait <= 0 selects DefaultBatchWait.
func NewBatcher(be BulkBackend, size int, wait time.Duration) *Batcher {
	if size < 1 {
		size = DefaultBatchSize
	}
	if wait <= 0 {
		wait = DefaultBatchWait
	}
	return &Batcher{be: be, size: size, wait: wait}
}

// BatchSize returns the flush size bound.
func (b *Batcher) BatchSize() int { return b.size }

// MaxWait returns the flush deadline bound.
func (b *Batcher) MaxWait() time.Duration { return b.wait }

// Stats returns a snapshot of the batcher's flush counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Execute queues req for the next batch and waits for its outcome.
// Cancellation is per-item: a pending item is withdrawn unsent, an
// in-flight item returns immediately while its batch keeps running for
// the siblings.
func (b *Batcher) Execute(ctx context.Context, req sim.Request) (*sim.Result, error) {
	it := &pendingItem{req: req, ctx: ctx, done: make(chan BatchItem, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, errors.New("dispatch: batcher is closed")
	}
	b.pending = append(b.pending, it)
	var batch []*pendingItem
	if len(b.pending) >= b.size {
		batch = b.takeLocked(true)
	} else if len(b.pending) == 1 {
		gen := b.gen
		b.timer = time.AfterFunc(b.wait, func() { b.flushDeadline(gen) })
	}
	b.mu.Unlock()
	if batch != nil {
		go b.run(batch)
	}
	select {
	case out := <-it.done:
		return out.Res, out.Err
	case <-ctx.Done():
		b.withdraw(it)
		return nil, canceledErr(req.Bench, ctxCause(ctx))
	}
}

// flushDeadline fires when a batch's MaxWait expires. A stale
// generation means that batch already flushed on size; the timer has
// nothing left to do.
func (b *Batcher) flushDeadline(gen uint64) {
	b.mu.Lock()
	if b.gen != gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.takeLocked(false)
	b.mu.Unlock()
	go b.run(batch)
}

// takeLocked claims the pending items as one batch and advances the
// generation, which retires any outstanding deadline timer. Callers
// hold b.mu.
func (b *Batcher) takeLocked(bySize bool) []*pendingItem {
	batch := b.pending
	b.pending = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.stats.Batches++
	b.stats.Items += len(batch)
	if bySize {
		b.stats.SizeFlushes++
	} else {
		b.stats.DeadlineFlushes++
	}
	if len(batch) > b.stats.MaxBatch {
		b.stats.MaxBatch = len(batch)
	}
	return batch
}

// withdraw removes a canceled caller's item if it is still pending —
// the item is then never sent at all. If the item already flushed, the
// batch is running; the caller has already returned, and the item's
// buffered channel absorbs the eventual outcome.
func (b *Batcher) withdraw(it *pendingItem) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, p := range b.pending {
		if p == it {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return
		}
	}
}

// run executes one flushed batch and distributes per-item outcomes.
// The batch context is canceled only when every member's context is
// canceled (a lone cancellation must not abort siblings); members whose
// context is already dead at flush time are completed as canceled
// without ever reaching the wire.
func (b *Batcher) run(batch []*pendingItem) {
	live := batch[:0:0]
	for _, it := range batch {
		if it.ctx.Err() != nil {
			it.done <- BatchItem{Err: canceledErr(it.req.Bench, ctxCause(it.ctx))}
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}

	bctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var remaining atomic.Int32
	remaining.Store(int32(len(live)))
	stops := make([]func() bool, len(live))
	for i, it := range live {
		stops[i] = context.AfterFunc(it.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		})
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	reqs := make([]sim.Request, len(live))
	for i, it := range live {
		reqs[i] = it.req
	}
	items, err := b.be.ExecuteBatch(bctx, reqs)
	if err == nil && len(items) != len(reqs) {
		err = fmt.Errorf("dispatch: bulk backend answered %d items for %d requests", len(items), len(reqs))
	}
	for i, it := range live {
		if err != nil {
			it.done <- BatchItem{Err: err}
			continue
		}
		it.done <- items[i]
	}
}

// Close marks the batcher closed and closes the underlying backend.
// Like every Backend, it must only be called once no Execute calls
// remain in flight, so there is nothing left to flush.
func (b *Batcher) Close() error {
	b.mu.Lock()
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	return b.be.Close()
}
