package dispatch

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestPoolMatchesLocal: results crossing the subprocess JSON frames are
// bit-identical to in-process simulation, and workers are reused.
func TestPoolMatchesLocal(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for _, bench := range []string{"crafty", "gzip", "wupwise"} {
		req := smallReq(bench, 3000)
		want, err := sim.Simulate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Execute(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(t, got, want) {
			t.Fatalf("%s: pool result differs from in-process result", bench)
		}
	}
	st := p.Stats()
	if st.Spawned > 2 {
		t.Fatalf("3 sequential requests spawned %d workers, want <= 2 (reuse)", st.Spawned)
	}
	if st.Crashes != 0 {
		t.Fatalf("unexpected crashes: %+v", st)
	}
}

// TestPoolTypedErrorsCrossTheWire: an in-band failure comes back as the
// typed taxonomy and does NOT count as a crash or kill the worker.
func TestPoolTypedErrorsCrossTheWire(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	_, err := p.Execute(context.Background(), smallReq("no-such-bench", 3000))
	if !errors.Is(err, sim.ErrUnknownBenchmark) {
		t.Fatalf("got %v, want ErrUnknownBenchmark", err)
	}
	bad := smallReq("crafty", 3000)
	bad.Measure = 0
	_, err = p.Execute(context.Background(), bad)
	if !errors.Is(err, sim.ErrBadConfig) {
		t.Fatalf("got %v, want ErrBadConfig", err)
	}
	// The same worker must still be alive and serving.
	if _, err := p.Execute(context.Background(), smallReq("crafty", 3000)); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Crashes != 0 || st.Spawned != 1 {
		t.Fatalf("in-band errors must not crash or respawn workers: %+v", st)
	}
}

// TestPoolWorkerCrashRetries kills every pool worker mid-request and
// asserts the request is transparently retried on a fresh worker, the
// result is bit-identical to an in-process run, and the on-disk store
// holds exactly one complete entry — no corruption, no partials.
func TestPoolWorkerCrashRetries(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	dir := t.TempDir()
	runner := sim.New(append(Options(p), sim.WithCacheDir(dir))...)

	// Big enough that the kill below is guaranteed to land mid-request
	// (~1s of simulation at the measured cycles/sec).
	req := smallReq("crafty", 1_000_000)

	done := make(chan struct{})
	var res *sim.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = runner.Run(context.Background(), req)
	}()

	// Wait for a worker to spawn and get into the request, then kill
	// every worker the pool has.
	deadline := time.Now().Add(10 * time.Second)
	for len(p.PIDs()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no worker spawned within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(250 * time.Millisecond)
	for _, pid := range p.PIDs() {
		syscall.Kill(pid, syscall.SIGKILL)
	}

	<-done
	if runErr != nil {
		t.Fatalf("request was not retried after the worker crash: %v", runErr)
	}
	if st := p.Stats(); st.Crashes == 0 || st.Retries == 0 {
		// The sim finished before the kill landed; the test proved
		// nothing. Fail loudly so the run lengths get re-tuned rather
		// than silently passing.
		t.Fatalf("kill did not land mid-request (stats %+v); raise the request's measure", st)
	}

	want, err := sim.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(t, res, want) {
		t.Fatal("retried result differs from an in-process run")
	}

	// Store integrity: exactly the one complete, loadable entry.
	store := sim.NewStore(dir)
	if got := store.Len(); got != 1 {
		t.Fatalf("store holds %d entries, want 1", got)
	}
	stored, ok := store.Load(context.Background(), sim.Key(req))
	if !ok {
		t.Fatal("stored entry does not load back (corrupt or version-mismatched)")
	}
	if !resultsEqual(t, stored, want) {
		t.Fatal("stored result differs from an in-process run")
	}
}

// TestPoolCancellation: canceling the context mid-request returns a
// typed ErrCanceled wrap (and does not hang waiting for the worker).
func TestPoolCancellation(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := p.Execute(ctx, smallReq("crafty", 50_000_000))
	if !errors.Is(err, sim.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want an ErrCanceled wrap carrying context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the worker kill did not unblock the wait", elapsed)
	}
	if st := p.Stats(); st.Crashes != 0 {
		t.Fatalf("a local cancellation must not count as a worker crash: %+v", st)
	}
}
