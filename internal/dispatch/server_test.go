package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/sim"
)

// newTestService spins up the regshared service over a fresh runner
// backed by a store in a temp dir.
func newTestService(t *testing.T) (*httptest.Server, *sim.Store) {
	t.Helper()
	store := sim.NewStore(t.TempDir())
	runner := sim.New(sim.WithStore(store))
	ts := httptest.NewServer(NewService(runner, store).Handler())
	t.Cleanup(ts.Close)
	return ts, store
}

// TestServiceRunRoundTrip: POST /v1/run executes and returns the same
// result an in-process run produces, and the result lands in the store
// where GET /v1/results/{key} serves it back.
func TestServiceRunRoundTrip(t *testing.T) {
	ts, _ := newTestService(t)
	req := smallReq("crafty", 3000)
	want, err := sim.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	h := NewHTTP(ts.URL)
	defer h.Close()
	got, err := h.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(t, got, want) {
		t.Fatal("service result differs from in-process result")
	}

	resp, err := http.Get(ts.URL + "/v1/results/" + sim.Key(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results: %s", resp.Status)
	}
	var stored sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&stored); err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(t, &stored, want) {
		t.Fatal("stored result served over the wire differs")
	}
}

// TestServiceErrorTaxonomy: service-side typed errors come back as
// status + (kind, message) and re-wrap into the sim sentinels on the
// client.
func TestServiceErrorTaxonomy(t *testing.T) {
	ts, _ := newTestService(t)
	h := NewHTTP(ts.URL)
	defer h.Close()

	_, err := h.Execute(context.Background(), smallReq("no-such-bench", 3000))
	if !errors.Is(err, sim.ErrUnknownBenchmark) {
		t.Fatalf("got %v, want ErrUnknownBenchmark", err)
	}
	bad := smallReq("crafty", 3000)
	bad.Measure = 0
	_, err = h.Execute(context.Background(), bad)
	if !errors.Is(err, sim.ErrBadConfig) {
		t.Fatalf("got %v, want ErrBadConfig", err)
	}

	// Raw status codes for non-Go clients.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: got %s, want 400", resp.Status)
	}
}

// TestServiceResultsMiss: an unknown key (and a service with no store)
// answers 404.
func TestServiceResultsMiss(t *testing.T) {
	ts, _ := newTestService(t)
	resp, err := http.Get(ts.URL + "/v1/results/no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("got %s, want 404", resp.Status)
	}

	storeless := httptest.NewServer(NewService(sim.New(), nil).Handler())
	defer storeless.Close()
	resp, err = http.Get(storeless.URL + "/v1/results/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("storeless service: got %s, want 404", resp.Status)
	}

	// The Go client re-wraps the 404's (kind, message) pair into the
	// typed ErrNotFound sentinel — a miss, not a service fault.
	h := NewHTTP(ts.URL)
	defer h.Close()
	if _, err := h.Result(context.Background(), "no-such-key"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("client Result miss: got %v, want ErrNotFound", err)
	}
}

// TestServiceStreamNDJSON: POST /v1/stream emits one event per request
// — results for the good ones, typed error kinds for the bad one —
// mirroring sim.Stream's event contract.
func TestServiceStreamNDJSON(t *testing.T) {
	ts, _ := newTestService(t)
	reqs := []sim.Request{
		smallReq("crafty", 3000),
		smallReq("no-such-bench", 3000),
		smallReq("gzip", 3000),
	}
	body, _ := json.Marshal(map[string]any{"requests": reqs})
	resp, err := http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	events := map[int]wireEvent{}
	trailerSeen := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if trailerSeen {
			t.Fatalf("line after the trailer: %q", sc.Text())
		}
		var line struct {
			wireEvent
			streamTrailer
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			trailerSeen = true
			if line.Events != len(events) {
				t.Fatalf("trailer says %d events, stream had %d", line.Events, len(events))
			}
			continue
		}
		events[line.Index] = line.wireEvent
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !trailerSeen {
		t.Fatal("stream ended without its {\"done\":true} trailer")
	}
	if len(events) != len(reqs) {
		t.Fatalf("got %d events, want %d", len(events), len(reqs))
	}
	for _, i := range []int{0, 2} {
		ev := events[i]
		if ev.Result == nil || ev.Error != "" || ev.Source != "simulated" {
			t.Fatalf("event %d: %+v, want a simulated result", i, summarize(ev))
		}
	}
	if ev := events[1]; ev.Result != nil || ev.Kind != kindUnknownBenchmark {
		t.Fatalf("event 1: %+v, want error kind %q", summarize(ev), kindUnknownBenchmark)
	}
}

// summarize keeps failure output readable (a Result dump is huge).
func summarize(ev wireEvent) string {
	has := "no result"
	if ev.Result != nil {
		has = "result"
	}
	return fmt.Sprintf("{index:%d key:%q source:%q %s error:%q kind:%q}",
		ev.Index, ev.Key, ev.Source, has, ev.Error, ev.Kind)
}
