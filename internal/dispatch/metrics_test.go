package dispatch

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
)

// TestHistogramQuantiles pins the fixed-bucket histogram's contract:
// quantiles come back as the covering bucket's upper bound, never above
// the observed maximum, never below the true quantile.
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	// 90 fast observations (~2µs) and 10 slow ones (~1ms).
	for range 90 {
		h.observe(2_000)
	}
	for range 10 {
		h.observe(1_000_000)
	}
	if h.count != 100 {
		t.Fatalf("count %d, want 100", h.count)
	}
	p50 := h.quantile(0.50)
	if p50 < 2_000 || p50 > 4_000 {
		t.Fatalf("p50 %dns, want the 2µs observation's bucket bound (2–4µs)", p50)
	}
	p99 := h.quantile(0.99)
	if p99 != 1_000_000 {
		// The covering bucket's bound is 1.048ms, clamped to the max.
		t.Fatalf("p99 %dns, want clamp to the observed max 1ms", p99)
	}
	if h.quantile(1.0) != h.maxNS {
		t.Fatalf("p100 %dns, want max %dns", h.quantile(1.0), h.maxNS)
	}

	var empty histogram
	if empty.quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
}

// TestServiceMetricsSnapshot: running the same cell twice exercises the
// full counter surface — one simulation, one in-memory hit, hit rate
// 0.5, delivered cycles credited for both — and the run endpoint's
// latency aggregate shows up with sane quantiles.
func TestServiceMetricsSnapshot(t *testing.T) {
	ts, _ := newTestService(t)
	ctx := context.Background()
	h := NewHTTP(ts.URL)
	defer h.Close()
	h.SetClientID("metrics-test")

	req := smallReq("crafty", 3000)
	first, err := h.Execute(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Execute(ctx, req); err != nil {
		t.Fatal(err)
	}

	snap, err := h.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Accepted != 2 || snap.Completed != 2 || snap.Errors != 0 || snap.Rejected != 0 {
		t.Fatalf("counters: accepted %d completed %d errors %d rejected %d; want 2, 2, 0, 0",
			snap.Accepted, snap.Completed, snap.Errors, snap.Rejected)
	}
	if snap.InFlight != 0 || snap.QueueDepth != 0 {
		t.Fatalf("gauges at rest: in-flight %d, queue %d; want 0, 0", snap.InFlight, snap.QueueDepth)
	}
	if snap.Simulated != 1 || snap.MemHits != 1 || snap.StoreHits != 0 {
		t.Fatalf("provenance: simulated %d mem %d store %d; want 1, 1, 0",
			snap.Simulated, snap.MemHits, snap.StoreHits)
	}
	if snap.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", snap.HitRate)
	}
	if want := 2 * first.S.Cycles; snap.CyclesDelivered != want {
		t.Fatalf("cycles delivered %d, want %d (both responses carry the result)", snap.CyclesDelivered, want)
	}
	if snap.CyclesPerSec <= 0 {
		t.Fatalf("cycles/sec %v, want > 0", snap.CyclesPerSec)
	}
	if snap.NowNS < snap.StartedNS {
		t.Fatalf("clock went backwards: started %d, now %d", snap.StartedNS, snap.NowNS)
	}

	var run *EndpointMetrics
	for i := range snap.Endpoints {
		if snap.Endpoints[i].Endpoint == "run" {
			run = &snap.Endpoints[i]
		}
	}
	if run == nil {
		t.Fatalf("no run endpoint aggregate in %+v", snap.Endpoints)
	}
	if run.Requests != 2 || run.Errors != 0 {
		t.Fatalf("run endpoint: %d requests, %d errors; want 2, 0", run.Requests, run.Errors)
	}
	if run.P50NS <= 0 || run.P99NS < run.P50NS || run.MaxNS < run.P99NS {
		t.Fatalf("run quantiles not ordered: p50 %d p99 %d max %d", run.P50NS, run.P99NS, run.MaxNS)
	}
}

// TestServiceRecentRequests: /v1/requests/recent serves stage-stamped
// records newest first, with monotone stage timestamps and the second
// run's in-memory provenance visible.
func TestServiceRecentRequests(t *testing.T) {
	ts, _ := newTestService(t)
	ctx := context.Background()
	h := NewHTTP(ts.URL)
	defer h.Close()
	h.SetClientID("recent-test")

	req := smallReq("crafty", 3000)
	for range 2 {
		if _, err := h.Execute(ctx, req); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/requests/recent?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recent: %s", resp.Status)
	}
	var recent []RequestMetrics
	if err := json.NewDecoder(resp.Body).Decode(&recent); err != nil {
		t.Fatal(err)
	}
	if len(recent) != 2 {
		t.Fatalf("got %d records, want 2", len(recent))
	}
	if recent[0].Seq <= recent[1].Seq {
		t.Fatalf("not newest first: seq %d then %d", recent[0].Seq, recent[1].Seq)
	}
	if recent[0].Source != "memory" || recent[1].Source != "simulated" {
		t.Fatalf("provenance: newest %q then %q; want memory then simulated",
			recent[0].Source, recent[1].Source)
	}
	for i, rm := range recent {
		if rm.Endpoint != "run" || rm.Client != "recent-test" || rm.Status != http.StatusOK {
			t.Fatalf("record %d: endpoint %q client %q status %d", i, rm.Endpoint, rm.Client, rm.Status)
		}
		if rm.Bench != "crafty" || rm.Key == "" {
			t.Fatalf("record %d: bench %q key %q", i, rm.Bench, rm.Key)
		}
		stages := []int64{rm.AcceptedNS, rm.QueuedNS, rm.DispatchedNS, rm.SettledNS, rm.EncodedNS}
		for j := 1; j < len(stages); j++ {
			if stages[j] < stages[j-1] {
				t.Fatalf("record %d: stage %d stamp %d precedes stage %d stamp %d (stages %v)",
					i, j, stages[j], j-1, stages[j-1], stages)
			}
		}
		if rm.AcceptedNS == 0 || rm.EncodedNS == 0 {
			t.Fatalf("record %d: missing boundary stamps: %+v", i, rm)
		}
	}
}

// TestMetricsRecentRing pins the ring's wrap behavior at the aggregator
// level: capacity 3, five finishes, newest three survive in order.
func TestMetricsRecentRing(t *testing.T) {
	m := newMetrics(3)
	for range 5 {
		tr := m.accept(epRun, "c")
		m.finish(tr, 200, 0)
	}
	got := m.recent(0)
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	for i, want := range []uint64{5, 4, 3} {
		if got[i].Seq != want {
			t.Fatalf("recent[%d].Seq = %d, want %d (got %+v)", i, got[i].Seq, want, got)
		}
	}
	if one := m.recent(1); len(one) != 1 || one[0].Seq != 5 {
		t.Fatalf("recent(1) = %+v, want just seq 5", one)
	}
}
