package dispatch

// Cross-backend storage acceptance: the same grid stored through fs:,
// mem: and s3:// backends must be indistinguishable — byte-identical
// envelopes, equal Merkle roots — and a fleet sharing one s3 bucket
// must behave as one store: the second host serves the first host's
// results without simulating, and pairwise /v1/sync between them is a
// no-op.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/objstore"
	"repro/internal/objstore/s3test"
	"repro/internal/objstore/sigv4"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// fakeBucket starts the in-process S3 fake and returns a -store style
// opener bound to it: each call builds a fresh client Store over the
// same bucket.
func fakeBucket(t *testing.T, bucket string) func(opts ...objstore.Option) *sim.Store {
	t.Helper()
	creds := sigv4.Credentials{AccessKeyID: "AKIDFLEET", SecretAccessKey: "fleet-secret"}
	ts := httptest.NewServer(s3test.New(bucket, creds, "us-east-1"))
	t.Cleanup(ts.Close)
	return func(opts ...objstore.Option) *sim.Store {
		t.Helper()
		opts = append([]objstore.Option{
			objstore.WithEndpoint(ts.URL),
			objstore.WithCredentials(creds.AccessKeyID, creds.SecretAccessKey),
			objstore.WithRegion("us-east-1"),
		}, opts...)
		s, err := sim.OpenStore("s3://"+bucket+"/grid", opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
}

// storeDump reads every raw envelope out of a store, keyed by entry
// name.
func storeDump(t *testing.T, s *sim.Store) map[string][]byte {
	t.Helper()
	ctx := context.Background()
	out := map[string][]byte{}
	for i := 0; i < sim.ShardCount; i++ {
		les, err := s.ShardList(ctx, fmt.Sprintf("%02x", i))
		if err != nil {
			t.Fatal(err)
		}
		for _, le := range les {
			data, err := s.ReadRaw(ctx, le.Name)
			if err != nil {
				t.Fatal(err)
			}
			out[le.Name] = data
		}
	}
	return out
}

// TestStoresByteIdenticalAcrossBackends runs the 112-cell acceptance
// grid three times, once with each backend behind the store, and
// checks the three stores end up indistinguishable: same report bytes,
// same entry count, byte-identical envelopes entry-for-entry, equal
// Merkle roots. This is the property that makes an s3 bucket, an fs
// host and a mem worker interchangeable members of one federation.
func TestStoresByteIdenticalAcrossBackends(t *testing.T) {
	spec := backendGrid(t)
	ctx := context.Background()
	openS3 := fakeBucket(t, "identical")

	stores := map[string]*sim.Store{}
	if fsStore, err := sim.OpenStore("fs:" + t.TempDir()); err != nil {
		t.Fatal(err)
	} else {
		stores["fs"] = fsStore
	}
	if memStore, err := sim.OpenStore("mem:"); err != nil {
		t.Fatal(err)
	} else {
		stores["mem"] = memStore
	}
	stores["s3"] = openS3()

	type outcome struct {
		report []byte
		root   string
		dump   map[string][]byte
	}
	results := map[string]outcome{}
	for _, name := range []string{"fs", "mem", "s3"} {
		s := stores[name]
		rep, err := spec.MustExpand(scenario.Overrides{}).Run(ctx, sim.New(sim.WithStore(s)), nil)
		if err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Manifest(ctx)
		if err != nil {
			t.Fatalf("%s manifest: %v", name, err)
		}
		results[name] = outcome{report: data, root: m.Root, dump: storeDump(t, s)}
	}

	base := results["fs"]
	if len(base.dump) == 0 {
		t.Fatal("fs store is empty after the grid run")
	}
	for _, name := range []string{"mem", "s3"} {
		got := results[name]
		if !bytes.Equal(got.report, base.report) {
			t.Errorf("%s report differs from the fs report", name)
		}
		if got.root != base.root {
			t.Errorf("%s manifest root %s != fs root %s", name, got.root, base.root)
		}
		if len(got.dump) != len(base.dump) {
			t.Errorf("%s stored %d entries, fs stored %d", name, len(got.dump), len(base.dump))
		}
		for entry, data := range base.dump {
			if !bytes.Equal(got.dump[entry], data) {
				t.Errorf("%s entry %s is not byte-identical to the fs envelope", name, entry)
			}
		}
	}
}

// TestSharedBucketServesFleet is the fleet acceptance: two hosts with
// independent runners share one s3 bucket. Host A simulates the grid;
// host B then runs the same grid and must serve every cell from the
// shared store — zero simulations — and a /v1/sync between the two
// hosts must recognize the stores as identical after one hash exchange
// with zero envelope transfers.
func TestSharedBucketServesFleet(t *testing.T) {
	spec := backendGrid(t)
	ctx := context.Background()
	openS3 := fakeBucket(t, "fleet")

	storeA := openS3()
	runnerA := sim.New(sim.WithStore(storeA))
	repA, err := spec.MustExpand(scenario.Overrides{}).Run(ctx, runnerA, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := runnerA.Counters().Simulated; n == 0 {
		t.Fatal("host A simulated nothing; the grid cannot have populated the bucket")
	}

	// Host B runs the production fleet shape: the shared bucket behind a
	// read-through local cache tier.
	storeB := openS3(objstore.WithLocalCache(t.TempDir()))
	runnerB := sim.New(sim.WithStore(storeB))
	repB, err := spec.MustExpand(scenario.Overrides{}).Run(ctx, runnerB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := runnerB.Counters().Simulated; n != 0 {
		t.Fatalf("host B simulated %d cells, want 0: every result was already in the shared bucket", n)
	}
	a, _ := json.Marshal(repA)
	b, _ := json.Marshal(repB)
	if !bytes.Equal(a, b) {
		t.Fatal("host B's served report differs from host A's simulated report")
	}
	ts := storeB.TierStats()
	if ts.RemoteGets == 0 {
		t.Fatalf("host B tier stats %+v: expected remote gets serving the grid", ts)
	}

	// Pairwise sync across the shared bucket is a no-op: same store,
	// same root, nothing to transfer.
	srv, counter := syncService(t, storeB)
	h := NewHTTP(srv.URL)
	defer h.Close()
	st, err := h.Sync(ctx, storeA)
	if err != nil {
		t.Fatal(err)
	}
	if !st.InSync || st.HashExchanges != 1 || st.Pulled != 0 || st.Pushed != 0 {
		t.Fatalf("shared-bucket sync %+v: want in-sync after one hash exchange with zero transfers", st)
	}
	if n := counter.countPrefix("GET /v1/store/"); n != 0 {
		t.Errorf("shared-bucket sync fetched %d envelopes, want 0", n)
	}
	if n := counter.countPrefix("PUT /v1/store/"); n != 0 {
		t.Errorf("shared-bucket sync pushed %d envelopes, want 0", n)
	}
}

// TestSyncConvergesAcrossBackends reconciles an fs host against an
// s3-backed host over /v1/sync: disjoint extras flow both ways and the
// two stores — different backends, different machines in production —
// converge to one Merkle root.
func TestSyncConvergesAcrossBackends(t *testing.T) {
	ctx := context.Background()
	common := []string{"c-1", "c-2", "c-3"}
	fsOnly := []string{"fs-only-1", "fs-only-2", "fs-only-3"}
	s3Only := []string{"s3-only-1", "s3-only-2"}

	fsStore := sim.NewStore(t.TempDir())
	warmStore(t, fsStore, append(append([]string{}, common...), fsOnly...)...)
	s3Store := fakeBucket(t, "converge")()
	warmStore(t, s3Store, append(append([]string{}, common...), s3Only...)...)

	ts, _ := syncService(t, s3Store)
	h := NewHTTP(ts.URL)
	defer h.Close()

	st, err := h.Sync(ctx, fsStore)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pulled != len(s3Only) || st.Pushed != len(fsOnly) || st.PullRejected != 0 || st.PushRejected != 0 {
		t.Fatalf("fs<->s3 sync %+v: want pulled %d, pushed %d, no rejections", st, len(s3Only), len(fsOnly))
	}

	fm, err := fsStore.Manifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := s3Store.Manifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Root != sm.Root {
		t.Fatalf("roots did not converge: fs %s, s3 %s", fm.Root, sm.Root)
	}
	for _, k := range append(append(append([]string{}, common...), fsOnly...), s3Only...) {
		if res, ok := fsStore.Load(ctx, k); !ok || res.Bench != k {
			t.Fatalf("key %q not loadable from the fs store after sync", k)
		}
		if res, ok := s3Store.Load(ctx, k); !ok || res.Bench != k {
			t.Fatalf("key %q not loadable from the s3 store after sync", k)
		}
	}

	st2, err := h.Sync(ctx, fsStore)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.InSync || st2.Pulled != 0 || st2.Pushed != 0 {
		t.Fatalf("second fs<->s3 sync %+v: want in-sync with zero transfers", st2)
	}
}
