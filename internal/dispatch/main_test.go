package dispatch

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestMain diverts the test binary into the worker frame loop when a
// Pool under test re-executes it (see MaybeWorker); otherwise the tests
// run normally.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// smallReq is a fast, valid request for round-trip tests.
func smallReq(bench string, measure uint64) sim.Request {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	return sim.Request{Bench: bench, Config: cfg, Warmup: 200, Measure: measure}
}
