package dispatch

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestSentinelsSurviveWireRoundTrip pins the error-taxonomy contract
// across the wire: a typed sim error classified on one side
// (errorKind) and reconstructed on the other (wireError) must still
// satisfy errors.Is for its sentinel, no matter how many layers of
// fmt.Errorf wrapping it picked up before crossing. This is what lets
// commands and retry logic treat local and remote backends uniformly.
func TestSentinelsSurviveWireRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		sentinel error
	}{
		{
			name:     "unknown benchmark, bare",
			err:      sim.ErrUnknownBenchmark,
			sentinel: sim.ErrUnknownBenchmark,
		},
		{
			name:     "unknown benchmark, wrapped",
			err:      fmt.Errorf("sim: %w %q", sim.ErrUnknownBenchmark, "nope"),
			sentinel: sim.ErrUnknownBenchmark,
		},
		{
			name:     "bad config, wrapped twice",
			err:      fmt.Errorf("outer: %w", fmt.Errorf("sim: x: %w: rob too small", sim.ErrBadConfig)),
			sentinel: sim.ErrBadConfig,
		},
		{
			name:     "store miss, wrapped",
			err:      fmt.Errorf("dispatch: %w for key abc123", ErrNotFound),
			sentinel: ErrNotFound,
		},
		{
			name:     "admission rejection, wrapped",
			err:      fmt.Errorf("%w: admission queue full (3 queued, 2 in flight)", ErrOverloaded),
			sentinel: ErrOverloaded,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := wireError(errorKind(tc.err), tc.err.Error())
			if !errors.Is(rt, tc.sentinel) {
				t.Errorf("errors.Is lost the sentinel across the wire: %v", rt)
			}
			if rt.Error() == "" {
				t.Error("round-trip dropped the message")
			}
		})
	}
}

// TestCanceledDeliberatelyDegrades documents the one asymmetry:
// a remote cancellation does NOT come back as sim.ErrCanceled, because
// the local context is still live and only a local interrupt may carry
// the "interrupted"/exit-130 signature (see wireError's comment).
func TestCanceledDeliberatelyDegrades(t *testing.T) {
	src := fmt.Errorf("sim: bench: %w: ctx done", sim.ErrCanceled)
	if kind := errorKind(src); kind != kindCanceled {
		t.Fatalf("errorKind = %q, want %q", kind, kindCanceled)
	}
	rt := wireError(kindCanceled, src.Error())
	if errors.Is(rt, sim.ErrCanceled) {
		t.Errorf("remote cancellation must not re-wrap sim.ErrCanceled locally, got %v", rt)
	}
	if rt == nil || rt.Error() == "" {
		t.Errorf("remote cancellation must still carry a message, got %v", rt)
	}
}

// TestUnknownKindDegradesUntyped pins forward compatibility: a kind
// minted by a newer peer degrades to a plain error carrying the
// message, never to a misclassified sentinel.
func TestUnknownKindDegradesUntyped(t *testing.T) {
	rt := wireError("some_future_kind", "novel failure")
	for _, sentinel := range []error{sim.ErrUnknownBenchmark, sim.ErrBadConfig, sim.ErrCanceled} {
		if errors.Is(rt, sentinel) {
			t.Errorf("unknown kind misclassified as %v", sentinel)
		}
	}
	if rt.Error() != "novel failure" {
		t.Errorf("message not preserved: %q", rt.Error())
	}
}
