package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/sim"
)

// The client side of store federation: HTTP.Sync reconciles a local
// result store with a regshared service's store through the Merkle
// manifest (sim.Manifest). The walk exchanges hashes, not entry lists —
// one root comparison when the stores agree, O(log n) node fetches down
// to the differing shards when they do not — and then transfers only
// the envelopes one side is missing, in both directions: pulls via
// GET /v1/store/{name}, pushes via POST /v1/sync. Every transferred
// envelope crosses verbatim and is re-validated by the receiving store
// (sim.Store.PutRaw), which is what lets the two roots converge to
// byte-equality afterwards.

// SyncStats reports what one Sync call did.
type SyncStats struct {
	// InSync is true when the roots already matched: the whole
	// reconciliation was the one summary exchange.
	InSync bool
	// HashExchanges counts Merkle exchanges: the manifest summary plus
	// one per tree node fetched during the walk. A single differing
	// shard costs exactly 1 + sim.ManifestHeight.
	HashExchanges int
	// ShardsDiffer counts leaves the walk found to disagree.
	ShardsDiffer int
	// Pulled / PullRejected count envelopes fetched from the peer and
	// stored locally, or refused by the local store's validation.
	Pulled       int
	PullRejected int
	// Pushed / PushRejected count envelopes sent to the peer and
	// accepted, or refused by its validation.
	Pushed       int
	PushRejected int
}

// Manifest fetches the service's Merkle summary and verifies it speaks
// this client's manifest schema and tree shape.
func (h *HTTP) Manifest(ctx context.Context) (ManifestSummary, error) {
	var ms ManifestSummary
	if err := h.getJSON(ctx, "/v1/manifest", &ms); err != nil {
		return ManifestSummary{}, err
	}
	if ms.Schema != sim.ManifestSchema || ms.Height != sim.ManifestHeight {
		return ManifestSummary{}, fmt.Errorf("dispatch: %s serves manifest schema %q height %d, this client speaks %q height %d",
			h.base, ms.Schema, ms.Height, sim.ManifestSchema, sim.ManifestHeight)
	}
	return ms, nil
}

// Sync reconciles store with the service's store and returns what it
// took. Entries present on both sides under the same name are never
// transferred; an entry whose name exists on both sides with different
// content (which deterministic same-version simulators cannot produce)
// is left alone on both — surfacing as roots that refuse to converge
// rather than as either side silently overwriting the other.
func (h *HTTP) Sync(ctx context.Context, store *sim.Store) (*SyncStats, error) {
	local, err := store.Manifest(ctx)
	if err != nil {
		return nil, err
	}
	st := &SyncStats{}
	remote, err := h.Manifest(ctx)
	if err != nil {
		return nil, err
	}
	st.HashExchanges++
	if comparableSimver(remote.SimVersion) && comparableSimver(local.SimVersion) && remote.SimVersion != local.SimVersion {
		return nil, fmt.Errorf("dispatch: %s federates simulator version %s, this store holds %s: refusing to mix results",
			h.base, remote.SimVersion, local.SimVersion)
	}
	if remote.Root == local.Root {
		st.InSync = true
		return st, nil
	}

	differ, err := h.diffWalk(ctx, local, st)
	if err != nil {
		return nil, err
	}
	st.ShardsDiffer = len(differ)
	for _, shard := range differ {
		if err := h.syncShard(ctx, store, shard, st); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// diffWalk descends the Merkle tree from the (already known to differ)
// root, fetching one remote node per disagreeing interior node and
// comparing its child hashes against the local tree, and returns the
// disagreeing shard names. Agreeing subtrees are never entered, which
// is the whole point: the walk's exchange count is proportional to the
// differing leaves times the height, not to the shard count.
func (h *HTTP) diffWalk(ctx context.Context, local *sim.Manifest, st *SyncStats) ([]string, error) {
	var differ []string
	var walk func(path string) error
	walk = func(path string) error {
		rn, err := h.manifestNode(ctx, path)
		if err != nil {
			return err
		}
		st.HashExchanges++
		ln, err := local.Node(path)
		if err != nil {
			return err
		}
		if len(rn.Children) != 2 || len(ln.Children) != 2 {
			return fmt.Errorf("dispatch: %s: manifest node %q carries %d children, want 2", h.base, path, len(rn.Children))
		}
		for c := 0; c < 2; c++ {
			if rn.Children[c] == ln.Children[c] {
				continue
			}
			child := path + string('0'+byte(c))
			if len(child) == sim.ManifestHeight {
				leaf, err := local.Node(child)
				if err != nil {
					return err
				}
				differ = append(differ, leaf.Shard)
				continue
			}
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(""); err != nil {
		return nil, err
	}
	return differ, nil
}

// syncShard reconciles one differing shard: exchange the two entry
// lists, pull the envelopes only the peer has, push the ones only we
// have.
func (h *HTTP) syncShard(ctx context.Context, store *sim.Store, shard string, st *SyncStats) error {
	remoteEntries, err := h.shardList(ctx, shard)
	if err != nil {
		return err
	}
	localEntries, err := store.ShardList(ctx, shard)
	if err != nil {
		return err
	}
	localByName := make(map[string]string, len(localEntries))
	for _, e := range localEntries {
		localByName[e.Name] = e.Digest
	}
	remoteByName := make(map[string]string, len(remoteEntries))
	for _, e := range remoteEntries {
		remoteByName[e.Name] = e.Digest
	}
	for _, re := range remoteEntries {
		if _, ok := localByName[re.Name]; ok {
			continue
		}
		data, err := h.fetchRaw(ctx, re.Name)
		if err != nil {
			return err
		}
		if _, err := store.PutRaw(ctx, data); err != nil {
			st.PullRejected++
			continue
		}
		st.Pulled++
	}
	var push []json.RawMessage
	for _, le := range localEntries {
		if _, ok := remoteByName[le.Name]; ok {
			continue
		}
		data, err := store.ReadRaw(ctx, le.Name)
		if err != nil {
			continue // deleted underneath us; the next sync settles it
		}
		push = append(push, json.RawMessage(data))
	}
	if len(push) > 0 {
		reply, err := h.pushSync(ctx, push)
		if err != nil {
			return err
		}
		st.Pushed += reply.Stored
		st.PushRejected += reply.Rejected
	}
	return nil
}

// manifestNode fetches one Merkle tree node by path.
func (h *HTTP) manifestNode(ctx context.Context, path string) (sim.ManifestNode, error) {
	var n sim.ManifestNode
	if err := h.getJSON(ctx, "/v1/manifest/node?path="+url.QueryEscape(path), &n); err != nil {
		return sim.ManifestNode{}, err
	}
	return n, nil
}

// shardList fetches one shard's entry list.
func (h *HTTP) shardList(ctx context.Context, shard string) ([]sim.ShardEntry, error) {
	var sl shardListing
	if err := h.getJSON(ctx, "/v1/manifest/shard/"+url.PathEscape(shard), &sl); err != nil {
		return nil, err
	}
	return sl.Entries, nil
}

// fetchRaw fetches one envelope's verbatim bytes.
func (h *HTTP) fetchRaw(ctx context.Context, name string) ([]byte, error) {
	hreq, err := h.newRequest(ctx, http.MethodGet, "/v1/store/"+url.PathEscape(name), nil)
	if err != nil {
		return nil, err
	}
	resp, err := h.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	if err := h.checkSimver(resp); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody))
	if err != nil {
		return nil, fmt.Errorf("dispatch: reading store entry %s from %s: %w", name, h.base, err)
	}
	return data, nil
}

// pushSync sends envelopes the peer is missing.
func (h *HTTP) pushSync(ctx context.Context, envs []json.RawMessage) (syncReply, error) {
	body, err := json.Marshal(syncPush{Envelopes: envs})
	if err != nil {
		return syncReply{}, fmt.Errorf("dispatch: encoding sync push: %w", err)
	}
	hreq, err := h.newRequest(ctx, http.MethodPost, "/v1/sync", bytes.NewReader(body))
	if err != nil {
		return syncReply{}, err
	}
	resp, err := h.client.Do(hreq)
	if err != nil {
		return syncReply{}, fmt.Errorf("dispatch: %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	if err := h.checkSimver(resp); err != nil {
		return syncReply{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return syncReply{}, decodeHTTPError(resp)
	}
	var reply syncReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return syncReply{}, fmt.Errorf("dispatch: decoding sync reply from %s: %w", h.base, err)
	}
	io.Copy(io.Discard, resp.Body)
	return reply, nil
}

// getJSON fetches path and decodes the JSON response.
func (h *HTTP) getJSON(ctx context.Context, path string, v any) error {
	hreq, err := h.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(hreq)
	if err != nil {
		return fmt.Errorf("dispatch: %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	if err := h.checkSimver(resp); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeHTTPError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("dispatch: decoding %s from %s: %w", path, h.base, err)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
