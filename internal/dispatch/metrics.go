package dispatch

import (
	"sync"
	"time"

	"repro/internal/objstore"
	"repro/internal/sim"
)

// Request-level observability for the regshared service. Every request
// that reaches the Service is stamped at each stage boundary — accepted,
// queued, dispatched, settled, encoded — as Unix-ns timestamps in a
// flat, CSV/JSON-friendly RequestMetrics, aggregated into service-wide
// counters plus per-endpoint latency histograms, and kept in a
// fixed-size ring the /v1/requests/recent endpoint serves. None of this
// touches simulated results: the determinism contract covers what the
// simulator computes, and these are wall-clock annotations about when
// the service moved it.

// nowNS is the one wall-clock read the metrics layer uses.
func nowNS() int64 {
	return time.Now().UnixNano() //repro:allow nodeterm -- request-timing metadata, never part of a simulated result
}

// RequestMetrics records one request's trip through the service as flat
// Unix-ns stage stamps. A stamp is zero when the request never reached
// that stage (a 429 has no DispatchedNS; /v1/results lookups skip the
// queue entirely, so QueuedNS == DispatchedNS == AcceptedNS there).
//
//repro:wire
type RequestMetrics struct {
	// Seq is the service-lifetime sequence number (1-based, assigned
	// at acceptance).
	Seq uint64 `json:"seq"`
	// Endpoint is the logical endpoint: "run", "stream" or "results".
	Endpoint string `json:"endpoint"`
	// Client identifies the submitter: the X-Client header if present,
	// else the remote host.
	Client string `json:"client"`
	// Bench echoes the request's benchmark ("run" only).
	Bench string `json:"bench,omitempty"`
	// Key is the deduplication/store key, once known.
	Key string `json:"key,omitempty"`
	// AcceptedNS: the handler started reading the request.
	AcceptedNS int64 `json:"accepted_ns"`
	// QueuedNS: the request entered the admission queue.
	QueuedNS int64 `json:"queued_ns,omitempty"`
	// DispatchedNS: admission granted, handed to the runner.
	DispatchedNS int64 `json:"dispatched_ns,omitempty"`
	// SettledNS: the runner (or store lookup) produced the outcome —
	// simulated, in-memory join, or store hit, per Source.
	SettledNS int64 `json:"settled_ns,omitempty"`
	// EncodedNS: the response was written.
	EncodedNS int64 `json:"encoded_ns"`
	// Source is the result's provenance ("simulated", "memory",
	// "store"), empty on failures and streams.
	Source string `json:"source,omitempty"`
	// Status is the HTTP status sent.
	Status int `json:"status"`
	// Events counts NDJSON events emitted ("stream" only).
	Events int `json:"events,omitempty"`
}

// Endpoint indices for the fixed per-endpoint histogram set. A bulk
// POST /v1/runs accounts per item under "runs" — one track per member —
// so its latency and shedding stats line up with the same workload sent
// as individual /v1/run calls.
const (
	epRun = iota
	epStream
	epResults
	epRuns
	epManifest
	epStore
	epSync
	numEndpoints
)

// endpointNames maps endpoint indices to their wire names.
var endpointNames = [numEndpoints]string{"run", "stream", "results", "runs", "manifest", "store", "sync"}

// histBuckets is the fixed bucket count: bucket b covers latencies in
// [1µs·2^(b-1), 1µs·2^b), so 32 buckets reach ~35 minutes.
const histBuckets = 32

// histogram is a fixed-bucket latency histogram: power-of-two bucket
// bounds starting at 1µs, no allocations, no dependencies. Quantiles
// come back as the upper bound of the covering bucket (≤2x
// overestimate), clamped to the observed maximum.
type histogram struct {
	count   uint64
	buckets [histBuckets]uint64
	maxNS   int64
}

// observe records one latency.
func (h *histogram) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count++
	if ns > h.maxNS {
		h.maxNS = ns
	}
	b := 0
	for bound := int64(1000); b < histBuckets-1 && ns >= bound; b++ {
		bound <<= 1
	}
	h.buckets[b]++
}

// quantile returns the latency at quantile q in [0,1].
func (h *histogram) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum uint64
	for b := range histBuckets {
		cum += h.buckets[b]
		if cum > rank {
			ub := int64(1000) << b
			if ub > h.maxNS {
				ub = h.maxNS
			}
			return ub
		}
	}
	return h.maxNS
}

// EndpointMetrics is one endpoint's aggregate in a MetricsSnapshot.
//
//repro:wire
type EndpointMetrics struct {
	Endpoint string `json:"endpoint"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	P50NS    int64  `json:"p50_ns"`
	P99NS    int64  `json:"p99_ns"`
	MaxNS    int64  `json:"max_ns"`
}

// MetricsSnapshot is the GET /metrics response: service-lifetime
// counters, the live gauges, the runner's provenance counters and the
// per-endpoint latency aggregates. All timestamps are Unix ns; all
// latencies are ns.
//
//repro:wire
type MetricsSnapshot struct {
	StartedNS int64 `json:"started_ns"`
	NowNS     int64 `json:"now_ns"`

	// Request counters: Accepted = Completed + Errors + Rejected +
	// whatever is still in flight or queued.
	Accepted  uint64 `json:"accepted"`
	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	Rejected  uint64 `json:"rejected"`

	// Live gauges.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`

	// Runner provenance counters (see sim.Counters) and the hit rate
	// they imply: (MemHits+StoreHits) / all settled requests.
	Simulated uint64  `json:"simulated"`
	MemHits   uint64  `json:"mem_hits"`
	StoreHits uint64  `json:"store_hits"`
	HitRate   float64 `json:"hit_rate"`

	// Delivered work: simulated cycles shipped to clients (store and
	// memory hits included — this measures service throughput, not
	// simulator speed) and that sum over the service's uptime.
	CyclesDelivered uint64  `json:"cycles_delivered"`
	CyclesPerSec    float64 `json:"cycles_per_sec"`

	// Bulk batching counters: POST /v1/runs calls, the items they
	// carried (the wire-amplification ratio is items/batches), and the
	// largest batch seen.
	BulkBatches  uint64 `json:"bulk_batches,omitempty"`
	BulkItems    uint64 `json:"bulk_items,omitempty"`
	BulkMaxBatch int    `json:"bulk_max_batch,omitempty"`

	// Federation counters: envelopes accepted and refused by
	// POST /v1/sync, and raw envelopes served to syncing peers from
	// GET /v1/store/{name}.
	SyncStored   uint64 `json:"sync_stored,omitempty"`
	SyncRejected uint64 `json:"sync_rejected,omitempty"`
	SyncServed   uint64 `json:"sync_served,omitempty"`

	// Store-tier counters (see objstore.TierStats): backend operations
	// the result store performed, and — for remote backends with a
	// read-through cache — how reads split between the local tier and
	// the remote bucket. Zero/absent when the service has no store.
	StoreGets        int64 `json:"store_gets,omitempty"`
	StorePuts        int64 `json:"store_puts,omitempty"`
	StoreLists       int64 `json:"store_lists,omitempty"`
	StoreLocalHits   int64 `json:"store_local_hits,omitempty"`
	StoreRemoteGets  int64 `json:"store_remote_gets,omitempty"`
	StoreRemoteBytes int64 `json:"store_remote_bytes,omitempty"`

	Endpoints []EndpointMetrics `json:"endpoints"`
}

// track follows one request through the metrics layer: the wire struct
// plus the endpoint index the histograms are keyed by.
type track struct {
	rm RequestMetrics
	ep int
}

// metrics aggregates the service's request observability: counters,
// per-endpoint histograms and the recent-request ring.
type metrics struct {
	startNS int64
	recentN int

	mu              sync.Mutex
	seq             uint64
	inFlight        int
	accepted        uint64
	completed       uint64
	errored         uint64
	rejected        uint64
	cyclesDelivered uint64
	bulkBatches     uint64
	bulkItems       uint64
	bulkMaxBatch    int
	syncStored      uint64
	syncRejected    uint64
	syncServed      uint64
	hists           [numEndpoints]histogram
	ring            []RequestMetrics
	ringNext        int
	ringFull        bool
}

// newMetrics builds the aggregator with a recent-ring capacity of n.
func newMetrics(n int) *metrics {
	if n < 1 {
		n = 1
	}
	return &metrics{startNS: nowNS(), recentN: n, ring: make([]RequestMetrics, 0, n)}
}

// accept opens a request's track and stamps AcceptedNS.
func (m *metrics) accept(ep int, client string) *track {
	m.mu.Lock()
	m.seq++
	m.accepted++
	seq := m.seq
	m.mu.Unlock()
	return &track{
		ep: ep,
		rm: RequestMetrics{
			Seq:        seq,
			Endpoint:   endpointNames[ep],
			Client:     client,
			AcceptedNS: nowNS(),
		},
	}
}

// queued stamps the admission-queue entry.
func (m *metrics) queued(t *track) { t.rm.QueuedNS = nowNS() }

// dispatched stamps the hand-off to the runner and raises the in-flight
// gauge.
func (m *metrics) dispatched(t *track) {
	t.rm.DispatchedNS = nowNS()
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

// settled stamps the outcome (simulated / memory join / store hit).
func (m *metrics) settled(t *track, source string) {
	t.rm.SettledNS = nowNS()
	t.rm.Source = source
}

// finish stamps EncodedNS, classifies the outcome by status, credits
// delivered cycles, feeds the endpoint histogram and pushes the record
// into the recent ring. It must be called exactly once per track, after
// the response is written.
func (m *metrics) finish(t *track, status int, cycles uint64) {
	t.rm.EncodedNS = nowNS()
	t.rm.Status = status
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.rm.DispatchedNS != 0 {
		m.inFlight--
	}
	switch {
	case status == 429:
		m.rejected++
	case status >= 400:
		m.errored++
	default:
		m.completed++
	}
	m.cyclesDelivered += cycles
	m.hists[t.ep].observe(t.rm.EncodedNS - t.rm.AcceptedNS)
	if len(m.ring) < m.recentN {
		m.ring = append(m.ring, t.rm)
		m.ringNext = len(m.ring) % m.recentN
		m.ringFull = len(m.ring) == m.recentN
		return
	}
	m.ring[m.ringNext] = t.rm
	m.ringNext = (m.ringNext + 1) % m.recentN
}

// bulk records one POST /v1/runs batch of n items.
func (m *metrics) bulk(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bulkBatches++
	m.bulkItems += uint64(n)
	if n > m.bulkMaxBatch {
		m.bulkMaxBatch = n
	}
}

// sync credits one POST /v1/sync push (stored + rejected envelopes) or
// raw envelopes served to a syncing peer.
func (m *metrics) sync(stored, rejected, served uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncStored += stored
	m.syncRejected += rejected
	m.syncServed += served
}

// snapshot assembles the /metrics response from the aggregator, the
// runner's provenance counters, the admission queue depth and the
// store's backend tier counters.
func (m *metrics) snapshot(ctr sim.Counters, queueDepth int, tier objstore.TierStats) MetricsSnapshot {
	now := nowNS()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		StartedNS:        m.startNS,
		NowNS:            now,
		Accepted:         m.accepted,
		Completed:        m.completed,
		Errors:           m.errored,
		Rejected:         m.rejected,
		InFlight:         m.inFlight,
		QueueDepth:       queueDepth,
		Simulated:        ctr.Simulated,
		MemHits:          ctr.MemHits,
		StoreHits:        ctr.DiskHits,
		CyclesDelivered:  m.cyclesDelivered,
		BulkBatches:      m.bulkBatches,
		BulkItems:        m.bulkItems,
		BulkMaxBatch:     m.bulkMaxBatch,
		SyncStored:       m.syncStored,
		SyncRejected:     m.syncRejected,
		SyncServed:       m.syncServed,
		StoreGets:        tier.Gets,
		StorePuts:        tier.Puts,
		StoreLists:       tier.Lists,
		StoreLocalHits:   tier.LocalHits,
		StoreRemoteGets:  tier.RemoteGets,
		StoreRemoteBytes: tier.RemoteBytes,
		Endpoints:        make([]EndpointMetrics, 0, numEndpoints),
	}
	if settled := ctr.Simulated + ctr.MemHits + ctr.DiskHits; settled > 0 {
		s.HitRate = float64(ctr.MemHits+ctr.DiskHits) / float64(settled)
	}
	if up := float64(now-m.startNS) / 1e9; up > 0 {
		s.CyclesPerSec = float64(m.cyclesDelivered) / up
	}
	for ep := range numEndpoints {
		h := &m.hists[ep]
		if h.count == 0 {
			continue
		}
		s.Endpoints = append(s.Endpoints, EndpointMetrics{
			Endpoint: endpointNames[ep],
			Requests: h.count,
			Errors:   m.endpointErrors(ep),
			P50NS:    h.quantile(0.50),
			P99NS:    h.quantile(0.99),
			MaxNS:    h.maxNS,
		})
	}
	return s
}

// endpointErrors counts non-2xx finishes currently in the ring for the
// endpoint — an approximation scoped to the ring window, which is what
// the recent endpoint exposes anyway. Callers hold m.mu.
func (m *metrics) endpointErrors(ep int) uint64 {
	var n uint64
	for i := range m.ring {
		if m.ring[i].Endpoint == endpointNames[ep] && m.ring[i].Status >= 400 {
			n++
		}
	}
	return n
}

// recent returns up to n most-recent finished requests, newest first.
func (m *metrics) recent(n int) []RequestMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	size := len(m.ring)
	if n < 1 || n > size {
		n = size
	}
	out := make([]RequestMetrics, 0, n)
	// Newest is the slot just before ringNext once the ring wrapped;
	// before that, it is simply the last append.
	newest := len(m.ring) - 1
	if m.ringFull {
		newest = (m.ringNext - 1 + size) % size
	}
	for i := range n {
		out = append(out, m.ring[(newest-i+size)%size])
	}
	return out
}
