package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/sim"
)

// The wire encoding shared by the pool worker protocol and the
// regshared HTTP service. Results cross as plain sim.Result JSON —
// Go's float encoding round-trips exactly, which is what keeps reports
// bit-identical across backends — and errors cross as a (kind, message)
// pair so the caller can re-attach the typed sentinel taxonomy of
// internal/sim on its side.

// Wire error kinds.
const (
	kindUnknownBenchmark = "unknown_benchmark"
	kindBadConfig        = "bad_config"
	kindCanceled         = "canceled"
	kindNotFound         = "not_found"
	kindOverloaded       = "overloaded"
	kindInternal         = "internal"
)

// ErrNotFound marks a result lookup whose key has no stored result: a
// plain miss, not a service fault. GET /v1/results answers it with 404
// and kind "not_found", and the client re-wraps it so errors.Is works.
var ErrNotFound = errors.New("dispatch: no stored result")

// simverHeader carries each side's simulator identity (sim.Version) on
// every service request and response, so a version-skewed client/server
// pair is detected instead of silently mixing simulators — the client
// would otherwise write the server's results into its local store under
// its own simver, poisoning the very staleness check the envelope
// exists for.
const simverHeader = "Regshared-Simver"

// comparableSimver reports whether v identifies the simulator substrate
// precisely enough to compare across processes: VCS-derived versions
// ("s1-<rev>") name the source tree and are equal exactly when the code
// is; executable-digest fallbacks ("s1-x…", go run / dirty trees) and
// "s1-unversioned" name one binary, so two different binaries built
// from identical source legitimately differ and cannot be compared.
func comparableSimver(v string) bool {
	return v != "" && v != "s1-unversioned" && !strings.HasPrefix(v, "s1-x")
}

// errorKind classifies err for the wire.
func errorKind(err error) string {
	switch {
	case errors.Is(err, sim.ErrUnknownBenchmark):
		return kindUnknownBenchmark
	case errors.Is(err, sim.ErrBadConfig):
		return kindBadConfig
	case errors.Is(err, sim.ErrCanceled):
		return kindCanceled
	case errors.Is(err, ErrNotFound):
		return kindNotFound
	case errors.Is(err, ErrOverloaded):
		return kindOverloaded
	default:
		return kindInternal
	}
}

// remoteError carries a remote side's error message while keeping the
// typed sentinel reachable through errors.Is.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// wireError reconstructs a typed error from its wire form. A remote
// cancellation deliberately does NOT re-wrap sim.ErrCanceled: this
// caller's own context is still live (local cancellation never reaches
// here — the transports classify it first), so the remote side shutting
// down mid-run is an ordinary failure, not the local-interrupt
// signature commands translate into "interrupted"/exit 130. Unknown
// kinds (a newer peer) likewise degrade to an untyped error with the
// message intact.
func wireError(kind, msg string) error {
	var sentinel error
	switch kind {
	case kindUnknownBenchmark:
		sentinel = sim.ErrUnknownBenchmark
	case kindBadConfig:
		sentinel = sim.ErrBadConfig
	case kindNotFound:
		sentinel = ErrNotFound
	case kindOverloaded:
		sentinel = ErrOverloaded
	case kindCanceled:
		return fmt.Errorf("dispatch: run canceled remotely (the backend shut down or aborted it): %s", msg)
	}
	if sentinel == nil {
		return errors.New(msg)
	}
	return &remoteError{msg: msg, sentinel: sentinel}
}

// canceledErr wraps a local context cancellation into the sim taxonomy
// (mirroring the runner's own wrapping, which is unexported).
func canceledErr(bench string, cause error) error {
	return fmt.Errorf("dispatch: %s: %w: %w", bench, sim.ErrCanceled, cause)
}

// ctxCause extracts the context's error, preferring the cancel cause.
func ctxCause(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// workerRequest is one stdin frame to a pool worker. Exactly one of
// Req and Reqs is meaningful: a single request frame carries Req, a
// batch frame (from the Batcher's coalesced flush) carries Reqs and is
// answered with per-item Items.
//
//repro:wire
type workerRequest struct {
	ID   uint64        `json:"id"`
	Req  sim.Request   `json:"req"`
	Reqs []sim.Request `json:"reqs,omitempty"`
}

// workerResponse is one stdout frame from a pool worker. For a single
// request, exactly one of Result and Err is set; for a batch frame,
// Items aligns 1:1 with the request's Reqs.
//
//repro:wire
type workerResponse struct {
	ID     uint64       `json:"id"`
	Result *sim.Result  `json:"result,omitempty"`
	Err    string       `json:"error,omitempty"`
	Kind   string       `json:"error_kind,omitempty"`
	Items  []workerItem `json:"items,omitempty"`
}

// workerItem is one request's outcome inside a batch frame: exactly one
// of Result and Err is set, so one poisoned item travels as data while
// its siblings carry results.
//
//repro:wire
type workerItem struct {
	Result *sim.Result `json:"result,omitempty"`
	Err    string      `json:"error,omitempty"`
	Kind   string      `json:"error_kind,omitempty"`
}

// bulkRequest is the POST /v1/runs body: one wire frame for a whole
// coalesced batch.
//
//repro:wire
type bulkRequest struct {
	Requests []sim.Request `json:"requests"`
}

// bulkItem is one request's outcome inside a POST /v1/runs response.
// Exactly one of Result and Error is set; RetryAfterSec carries the
// admission hint a single /v1/run would have sent as a Retry-After
// header, since a bulk response has one header for many outcomes.
//
//repro:wire
type bulkItem struct {
	Result        *sim.Result `json:"result,omitempty"`
	Error         string      `json:"error,omitempty"`
	Kind          string      `json:"error_kind,omitempty"`
	RetryAfterSec int         `json:"retry_after_sec,omitempty"`
}

// bulkResponse is the POST /v1/runs response: per-item outcomes aligned
// 1:1 with the request batch.
//
//repro:wire
type bulkResponse struct {
	Items []bulkItem `json:"items"`
}

// ManifestSummary is the GET /v1/manifest response: the store's Merkle
// root and counters WITHOUT the 256 leaf digests. Shipping only the
// root is what makes the sync walk O(log n): two agreeing hosts
// exchange one hash, and disagreeing hosts descend the tree via
// /v1/manifest/node instead of diffing full digest lists.
//
//repro:wire
type ManifestSummary struct {
	Schema     string `json:"schema"`
	SimVersion string `json:"sim_version"`
	Root       string `json:"root"`
	Height     int    `json:"height"`
	Entries    int    `json:"entries"`
}

// shardListing is the GET /v1/manifest/shard/{shard} response: one
// Merkle leaf's preimage, exchanged only for shards a diff walk found
// to differ.
//
//repro:wire
type shardListing struct {
	Shard   string           `json:"shard"`
	Entries []sim.ShardEntry `json:"entries"`
}

// syncPush is the POST /v1/sync body: raw store envelopes, verbatim
// bytes — the receiver validates and re-addresses each one itself
// (sim.Store.PutRaw), so a peer cannot plant entries under wrong names.
//
//repro:wire
type syncPush struct {
	Envelopes []json.RawMessage `json:"envelopes"`
}

// syncReply reports what a sync push did: envelopes stored, envelopes
// refused (foreign schema or simulator version, malformed bytes), and
// the first few refusal messages for diagnosis.
//
//repro:wire
type syncReply struct {
	Stored   int      `json:"stored"`
	Rejected int      `json:"rejected"`
	Errors   []string `json:"errors,omitempty"`
}
