package dispatch

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/sim"
)

// The wire encoding shared by the pool worker protocol and the
// regshared HTTP service. Results cross as plain sim.Result JSON —
// Go's float encoding round-trips exactly, which is what keeps reports
// bit-identical across backends — and errors cross as a (kind, message)
// pair so the caller can re-attach the typed sentinel taxonomy of
// internal/sim on its side.

// Wire error kinds.
const (
	kindUnknownBenchmark = "unknown_benchmark"
	kindBadConfig        = "bad_config"
	kindCanceled         = "canceled"
	kindNotFound         = "not_found"
	kindOverloaded       = "overloaded"
	kindInternal         = "internal"
)

// ErrNotFound marks a result lookup whose key has no stored result: a
// plain miss, not a service fault. GET /v1/results answers it with 404
// and kind "not_found", and the client re-wraps it so errors.Is works.
var ErrNotFound = errors.New("dispatch: no stored result")

// simverHeader carries each side's simulator identity (sim.Version) on
// every service request and response, so a version-skewed client/server
// pair is detected instead of silently mixing simulators — the client
// would otherwise write the server's results into its local store under
// its own simver, poisoning the very staleness check the envelope
// exists for.
const simverHeader = "Regshared-Simver"

// comparableSimver reports whether v identifies the simulator substrate
// precisely enough to compare across processes: VCS-derived versions
// ("s1-<rev>") name the source tree and are equal exactly when the code
// is; executable-digest fallbacks ("s1-x…", go run / dirty trees) and
// "s1-unversioned" name one binary, so two different binaries built
// from identical source legitimately differ and cannot be compared.
func comparableSimver(v string) bool {
	return v != "" && v != "s1-unversioned" && !strings.HasPrefix(v, "s1-x")
}

// errorKind classifies err for the wire.
func errorKind(err error) string {
	switch {
	case errors.Is(err, sim.ErrUnknownBenchmark):
		return kindUnknownBenchmark
	case errors.Is(err, sim.ErrBadConfig):
		return kindBadConfig
	case errors.Is(err, sim.ErrCanceled):
		return kindCanceled
	case errors.Is(err, ErrNotFound):
		return kindNotFound
	case errors.Is(err, ErrOverloaded):
		return kindOverloaded
	default:
		return kindInternal
	}
}

// remoteError carries a remote side's error message while keeping the
// typed sentinel reachable through errors.Is.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// wireError reconstructs a typed error from its wire form. A remote
// cancellation deliberately does NOT re-wrap sim.ErrCanceled: this
// caller's own context is still live (local cancellation never reaches
// here — the transports classify it first), so the remote side shutting
// down mid-run is an ordinary failure, not the local-interrupt
// signature commands translate into "interrupted"/exit 130. Unknown
// kinds (a newer peer) likewise degrade to an untyped error with the
// message intact.
func wireError(kind, msg string) error {
	var sentinel error
	switch kind {
	case kindUnknownBenchmark:
		sentinel = sim.ErrUnknownBenchmark
	case kindBadConfig:
		sentinel = sim.ErrBadConfig
	case kindNotFound:
		sentinel = ErrNotFound
	case kindOverloaded:
		sentinel = ErrOverloaded
	case kindCanceled:
		return fmt.Errorf("dispatch: run canceled remotely (the backend shut down or aborted it): %s", msg)
	}
	if sentinel == nil {
		return errors.New(msg)
	}
	return &remoteError{msg: msg, sentinel: sentinel}
}

// canceledErr wraps a local context cancellation into the sim taxonomy
// (mirroring the runner's own wrapping, which is unexported).
func canceledErr(bench string, cause error) error {
	return fmt.Errorf("dispatch: %s: %w: %w", bench, sim.ErrCanceled, cause)
}

// ctxCause extracts the context's error, preferring the cancel cause.
func ctxCause(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// workerRequest is one stdin frame to a pool worker.
//
//repro:wire
type workerRequest struct {
	ID  uint64      `json:"id"`
	Req sim.Request `json:"req"`
}

// workerResponse is one stdout frame from a pool worker. Exactly one of
// Result and Err is set.
//
//repro:wire
type workerResponse struct {
	ID     uint64      `json:"id"`
	Result *sim.Result `json:"result,omitempty"`
	Err    string      `json:"error,omitempty"`
	Kind   string      `json:"error_kind,omitempty"`
}
