// Package regfile implements the renamer state of §4.1: the Physical
// Register File (with values, so speculation can be validated), the
// circular Free List whose head pointer is checkpointed, the speculative
// Rename Map and the Commit Rename Map.
//
// The paper's core has 256 INT and 256 FP physical registers (Table 1).
// Physical register identifiers are flat uint16 values with the class in
// bit 15 so that the reference-counting structures can CAM on a single tag.
package regfile

import (
	"fmt"

	"repro/internal/isa"
)

// PhysReg identifies a physical register: bit 15 is the class (0 INT,
// 1 FP), low bits the index within the class.
type PhysReg uint16

// NoPhysReg is the invalid physical register sentinel.
const NoPhysReg PhysReg = 0xFFFF

// MakePhys builds a PhysReg from class and index.
func MakePhys(class isa.RegClass, idx int) PhysReg {
	p := PhysReg(idx)
	if class == isa.FPReg {
		p |= 1 << 15
	}
	return p
}

// Class returns the register class of p.
func (p PhysReg) Class() isa.RegClass {
	if p&(1<<15) != 0 {
		return isa.FPReg
	}
	return isa.IntReg
}

// Index returns the within-class index of p.
func (p PhysReg) Index() int { return int(p &^ (1 << 15)) }

// Valid reports whether p is a real register.
func (p PhysReg) Valid() bool { return p != NoPhysReg }

func (p PhysReg) String() string {
	if !p.Valid() {
		return "p-"
	}
	if p.Class() == isa.FPReg {
		return fmt.Sprintf("fp%d", p.Index())
	}
	return fmt.Sprintf("p%d", p.Index())
}

// RenameMap maps architectural registers of both classes to physical
// registers. It is a small value type: checkpointing it is a struct copy,
// matching the paper's "copy the checkpointed RM" recovery (§4.1: saving
// the x86_64 map costs (16+16)×8 bits).
type RenameMap struct {
	Int [isa.NumArchRegs]PhysReg
	FP  [isa.NumArchRegs]PhysReg
}

// Get returns the mapping for architectural register r.
func (m *RenameMap) Get(r isa.Reg) PhysReg {
	if r.Class == isa.FPReg {
		return m.FP[r.Index]
	}
	return m.Int[r.Index]
}

// Set updates the mapping for architectural register r.
func (m *RenameMap) Set(r isa.Reg, p PhysReg) {
	if r.Class == isa.FPReg {
		m.FP[r.Index] = p
	} else {
		m.Int[r.Index] = p
	}
}

// FreeList is the circular buffer of free physical registers for one
// class. Allocation pops at the head; reclaiming pushes at the tail. The
// head is an absolute (monotone) counter so a checkpoint is just its value:
// restoring the head "un-pops" every register allocated on the wrong path
// (§4.1). The backing ring is 2× oversized so commit-side pushes can never
// overwrite entries that an outstanding checkpoint might still un-pop.
type FreeList struct {
	buf  []PhysReg
	head uint64 // total pops
	tail uint64 // total pushes
}

// NewFreeList builds a free list containing regs.
func NewFreeList(regs []PhysReg) *FreeList {
	f := &FreeList{buf: make([]PhysReg, 2*max(len(regs), 1))}
	for _, r := range regs {
		f.Push(r)
	}
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Len returns the number of free registers currently available.
func (f *FreeList) Len() int { return int(f.tail - f.head) }

// Pop allocates a register; ok is false when the list is empty.
func (f *FreeList) Pop() (PhysReg, bool) {
	if f.head == f.tail {
		return NoPhysReg, false
	}
	p := f.buf[f.head%uint64(len(f.buf))]
	f.head++
	return p, true
}

// Push returns a register to the list.
func (f *FreeList) Push(p PhysReg) {
	f.buf[f.tail%uint64(len(f.buf))] = p
	f.tail++
}

// Head returns the absolute head counter for checkpointing.
func (f *FreeList) Head() uint64 { return f.head }

// RestoreHead rewinds the head counter to a checkpointed value; h must not
// exceed the current head.
func (f *FreeList) RestoreHead(h uint64) {
	if h > f.head {
		panic("regfile: RestoreHead beyond current head")
	}
	f.head = h
}

// File is the complete renamer state for both register classes.
type File struct {
	numPerClass int

	values [2][]uint64
	ready  [2][]bool
	inFL   [2][]bool // double-free/leak guard

	free [2]*FreeList

	// RM is the speculative rename map, CRM the committed one.
	RM  RenameMap
	CRM RenameMap
}

// NewFile builds a register file with n physical registers per class and
// maps the architectural registers of each class to physical registers
// 0..NumArchRegs-1, which start ready with value 0.
func NewFile(n int) *File {
	if n <= isa.NumArchRegs {
		panic("regfile: need more physical than architectural registers")
	}
	f := &File{numPerClass: n}
	for c := 0; c < 2; c++ {
		f.values[c] = make([]uint64, n)
		f.ready[c] = make([]bool, n)
		f.inFL[c] = make([]bool, n)
		var freeRegs []PhysReg
		class := isa.RegClass(c)
		for i := 0; i < n; i++ {
			if i < isa.NumArchRegs {
				f.ready[c][i] = true
				continue
			}
			freeRegs = append(freeRegs, MakePhys(class, i))
			f.inFL[c][i] = true
		}
		f.free[c] = NewFreeList(freeRegs)
	}
	for i := 0; i < isa.NumArchRegs; i++ {
		f.RM.Int[i] = MakePhys(isa.IntReg, i)
		f.RM.FP[i] = MakePhys(isa.FPReg, i)
	}
	f.CRM = f.RM
	return f
}

// NumPerClass returns the physical register count per class.
func (f *File) NumPerClass() int { return f.numPerClass }

// FreeList returns the free list of the given class.
func (f *File) FreeList(c isa.RegClass) *FreeList { return f.free[c] }

// Alloc pops a free register of class c, marking it not-ready.
func (f *File) Alloc(c isa.RegClass) (PhysReg, bool) {
	p, ok := f.free[c].Pop()
	if !ok {
		return NoPhysReg, false
	}
	f.ready[c][p.Index()] = false
	f.inFL[c][p.Index()] = false
	return p, true
}

// NoteHeadRestored must be called after rewinding a free list's head: the
// un-popped registers are free again. The caller passes the class and the
// number of un-popped registers; the guard state is resynchronized by
// marking the re-freed slots.
func (f *File) NoteHeadRestored(c isa.RegClass) {
	fl := f.free[c]
	for i := fl.head; i < fl.tail; i++ {
		p := fl.buf[i%uint64(len(fl.buf))]
		f.inFL[c][p.Index()] = true
	}
}

// Release pushes p back on its class's free list. Releasing a register
// that is already free indicates a reference counting bug and panics.
func (f *File) Release(p PhysReg) {
	c := p.Class()
	if f.inFL[c][p.Index()] {
		panic(fmt.Sprintf("regfile: double free of %v", p))
	}
	f.inFL[c][p.Index()] = true
	f.free[c].Push(p)
}

// SetReady marks p ready and records its value.
func (f *File) SetReady(p PhysReg, value uint64) {
	c := int(p.Class())
	f.ready[c][p.Index()] = true
	f.values[c][p.Index()] = value
}

// MarkNotReady clears p's ready bit (used when a register is re-popped
// after a head restore).
func (f *File) MarkNotReady(p PhysReg) {
	f.ready[p.Class()][p.Index()] = false
}

// InFreeList reports whether p is currently free (used by the core's
// register-conservation audit).
func (f *File) InFreeList(p PhysReg) bool {
	return f.inFL[p.Class()][p.Index()]
}

// Ready reports whether p holds its final value.
func (f *File) Ready(p PhysReg) bool {
	return f.ready[p.Class()][p.Index()]
}

// Value returns the current value of p.
func (f *File) Value(p PhysReg) uint64 {
	return f.values[p.Class()][p.Index()]
}
