package regfile

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/rng"
)

func TestPhysRegEncoding(t *testing.T) {
	p := MakePhys(isa.FPReg, 37)
	if p.Class() != isa.FPReg || p.Index() != 37 {
		t.Fatalf("round-trip failed: %v", p)
	}
	q := MakePhys(isa.IntReg, 37)
	if p == q {
		t.Fatal("classes collide in the flat encoding")
	}
	if NoPhysReg.Valid() {
		t.Fatal("NoPhysReg must be invalid")
	}
}

func TestInitialMappings(t *testing.T) {
	f := NewFile(64)
	for i := 0; i < isa.NumArchRegs; i++ {
		if f.RM.Get(isa.IntR(i)) != MakePhys(isa.IntReg, i) {
			t.Fatalf("initial int mapping %d wrong", i)
		}
		if !f.Ready(f.RM.Get(isa.IntR(i))) {
			t.Fatalf("initial register %d not ready", i)
		}
	}
	if f.RM != f.CRM {
		t.Fatal("RM and CRM differ at reset")
	}
	// 64 - 16 architectural = 48 free per class.
	if n := f.FreeList(isa.IntReg).Len(); n != 48 {
		t.Fatalf("initial free count = %d, want 48", n)
	}
}

// TestAllocNeverDuplicates: popping the entire free list yields distinct
// registers, none architectural.
func TestAllocNeverDuplicates(t *testing.T) {
	f := NewFile(64)
	seen := map[PhysReg]bool{}
	for {
		p, ok := f.Alloc(isa.IntReg)
		if !ok {
			break
		}
		if seen[p] {
			t.Fatalf("register %v allocated twice", p)
		}
		if p.Index() < isa.NumArchRegs {
			t.Fatalf("allocated an architectural-reset register %v", p)
		}
		seen[p] = true
	}
	if len(seen) != 48 {
		t.Fatalf("allocated %d registers, want 48", len(seen))
	}
}

// TestHeadRestoreUnpopsWrongPathAllocations: the checkpointed-head
// recovery of §4.1.
func TestHeadRestoreUnpopsWrongPathAllocations(t *testing.T) {
	f := NewFile(64)
	fl := f.FreeList(isa.IntReg)
	head := fl.Head()
	before := fl.Len()

	var popped []PhysReg
	for i := 0; i < 10; i++ {
		p, _ := f.Alloc(isa.IntReg)
		popped = append(popped, p)
	}
	fl.RestoreHead(head)
	f.NoteHeadRestored(isa.IntReg)
	if fl.Len() != before {
		t.Fatalf("free count after restore = %d, want %d", fl.Len(), before)
	}
	// Re-allocation returns the same registers in the same order.
	for i := 0; i < 10; i++ {
		p, _ := f.Alloc(isa.IntReg)
		if p != popped[i] {
			t.Fatalf("re-pop %d = %v, want %v", i, p, popped[i])
		}
	}
}

// TestDoubleFreePanics: the guard that validates the reference counting.
func TestDoubleFreePanics(t *testing.T) {
	f := NewFile(64)
	p, _ := f.Alloc(isa.IntReg)
	f.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	f.Release(p)
}

// TestValuesAndReadiness: SetReady publishes the value; Alloc clears it.
func TestValuesAndReadiness(t *testing.T) {
	f := NewFile(64)
	p, _ := f.Alloc(isa.IntReg)
	if f.Ready(p) {
		t.Fatal("freshly allocated register is ready")
	}
	f.SetReady(p, 0xDEAD)
	if !f.Ready(p) || f.Value(p) != 0xDEAD {
		t.Fatal("SetReady did not publish the value")
	}
	f.MarkNotReady(p)
	if f.Ready(p) {
		t.Fatal("MarkNotReady did not clear readiness")
	}
}

// TestFreeListConservation: random alloc/free sequences never lose or
// duplicate registers (the invariant behind the 2x-oversized ring).
func TestFreeListConservation(t *testing.T) {
	f := NewFile(40)
	r := rng.New(77)
	live := map[PhysReg]bool{}
	for step := 0; step < 50_000; step++ {
		if r.Bool(0.5) {
			if p, ok := f.Alloc(isa.IntReg); ok {
				if live[p] {
					t.Fatalf("step %d: %v allocated while live", step, p)
				}
				live[p] = true
			}
		} else if len(live) > 0 {
			for p := range live {
				f.Release(p)
				delete(live, p)
				break
			}
		}
		if f.FreeList(isa.IntReg).Len()+len(live) != 40-isa.NumArchRegs {
			t.Fatalf("step %d: conservation broken (free=%d live=%d)",
				step, f.FreeList(isa.IntReg).Len(), len(live))
		}
	}
}

// TestRenameMapValueSemantics: a RenameMap copy is an independent
// checkpoint.
func TestRenameMapValueSemantics(t *testing.T) {
	f := NewFile(64)
	snap := f.RM
	p, _ := f.Alloc(isa.IntReg)
	f.RM.Set(isa.IntR(3), p)
	if snap.Get(isa.IntR(3)) == p {
		t.Fatal("snapshot aliased the live map")
	}
	f.RM = snap
	if f.RM.Get(isa.IntR(3)) != MakePhys(isa.IntReg, 3) {
		t.Fatal("restore failed")
	}
}

func TestRestoreHeadBeyondCurrentPanics(t *testing.T) {
	f := NewFile(64)
	fl := f.FreeList(isa.IntReg)
	defer func() {
		if recover() == nil {
			t.Fatal("RestoreHead beyond head did not panic")
		}
	}()
	fl.RestoreHead(fl.Head() + 1)
}
