// Package cliflags registers the runner flag set every simulation
// command shares — -backend, -simver, and (via internal/storeflag)
// -store, -cachedir, -s3-endpoint and -store-cache — and resolves it
// into the execution backend and result store a runner is built from.
// Centralizing the registration keeps the flag names, help strings and
// deprecation behavior identical across cmd/sweep, cmd/bench,
// cmd/regshared, cmd/loadgen, cmd/regsim, cmd/paperfigs and
// cmd/storagecost: a flag contract change lands in one place.
//
// The usual shape:
//
//	f := cliflags.RegisterRunnerFlags(flag.CommandLine)
//	flag.Parse()
//	if f.PrintVersion(os.Stdout) {
//	    return // -simver
//	}
//	b, err := f.Build()
//	...
//	defer b.Close()
//	runner := sim.New(b.RunnerOptions()...)
//
// Commands with no execution backend (pure store consumers like
// cmd/storagecost) register with WithoutBackend; commands that need the
// raw spec for their own construction rules (cmd/bench's store/backend
// interaction checks) read BackendSpec and OpenStore à la carte.
package cliflags

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/dispatch"
	"repro/internal/sim"
	"repro/internal/storeflag"
)

// defaultBackendHelp documents the -backend values most commands
// accept. regshared overrides it (an http backend is refused there).
const defaultBackendHelp = "execution backend: local | pool:N | http://addr"

// config collects the registration options.
type config struct {
	backendHelp string
	noBackend   bool
}

// Option customizes RegisterRunnerFlags.
type Option func(*config)

// WithBackendHelp replaces -backend's help string (the flag's name,
// default and semantics stay shared).
func WithBackendHelp(help string) Option {
	return func(c *config) { c.backendHelp = help }
}

// WithoutBackend skips the -backend flag for commands that never
// execute through a dispatch backend.
func WithoutBackend() Option {
	return func(c *config) { c.noBackend = true }
}

// Flags holds the registered runner flags until the command parses and
// resolves them.
type Flags struct {
	backend *string
	simver  *bool
	// Store exposes the underlying store flag holder for commands that
	// need the raw spec or objstore options (cmd/loadgen drives store
	// load directly from the spec).
	Store *storeflag.Flags
}

// RegisterRunnerFlags installs the shared runner flags on fs and
// returns the holder to resolve after fs.Parse.
func RegisterRunnerFlags(fs *flag.FlagSet, opts ...Option) *Flags {
	c := config{backendHelp: defaultBackendHelp}
	for _, o := range opts {
		o(&c)
	}
	f := &Flags{Store: storeflag.Register(fs)}
	if !c.noBackend {
		f.backend = fs.String("backend", "local", c.backendHelp)
	}
	f.simver = fs.Bool("simver", false, "print the simulator version tag (the store envelope simver, CI's store cache key) and exit")
	return f
}

// BackendSpec returns the parsed -backend value, or "" when the command
// registered WithoutBackend.
func (f *Flags) BackendSpec() string {
	if f.backend == nil {
		return ""
	}
	return *f.backend
}

// PrintVersion handles -simver: when the flag was set it prints the
// simulator version tag to w and reports true, and the command should
// exit successfully without doing anything else.
func (f *Flags) PrintVersion(w io.Writer) bool {
	if !*f.simver {
		return false
	}
	fmt.Fprintln(w, sim.Version())
	return true
}

// OpenStore resolves the store flags to a store. A nil store with a nil
// error means storage off.
func (f *Flags) OpenStore() (*sim.Store, error) { return f.Store.Open() }

// Built is the resolved runner material: the execution backend (nil
// when registered WithoutBackend) and the result store (nil when
// storage is off).
type Built struct {
	Backend dispatch.Backend
	Store   *sim.Store
}

// Build resolves the parsed flags: it constructs the -backend dispatch
// backend and opens the -store store. On success the caller owns the
// backend and must Close the result.
func (f *Flags) Build() (*Built, error) {
	b := &Built{}
	if f.backend != nil {
		be, err := dispatch.New(*f.backend)
		if err != nil {
			return nil, err
		}
		b.Backend = be
	}
	store, err := f.OpenStore()
	if err != nil {
		if b.Backend != nil {
			b.Backend.Close()
		}
		return nil, err
	}
	b.Store = store
	return b, nil
}

// RunnerOptions assembles the sim options the built backend and store
// imply, with extra appended — ready for sim.New.
func (b *Built) RunnerOptions(extra ...sim.Option) []sim.Option {
	var opts []sim.Option
	if b.Backend != nil {
		opts = dispatch.Options(b.Backend)
	}
	if b.Store != nil {
		opts = append(opts, sim.WithStore(b.Store))
	}
	return append(opts, extra...)
}

// Close releases the built backend. Safe on a nil receiver and with no
// backend, so `defer b.Close()` works in every command shape.
func (b *Built) Close() {
	if b != nil && b.Backend != nil {
		b.Backend.Close()
	}
}
