package cliflags

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestSharedRegistration: one call registers the whole shared contract
// — backend, simver and the four store flags.
func TestSharedRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	RegisterRunnerFlags(fs)
	for _, name := range []string{"backend", "simver", "store", "cachedir", "s3-endpoint", "store-cache"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}

	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	f2 := RegisterRunnerFlags(fs2, WithoutBackend())
	if fs2.Lookup("backend") != nil {
		t.Error("WithoutBackend still registered -backend")
	}
	if f2.BackendSpec() != "" {
		t.Error("BackendSpec nonempty without a backend flag")
	}

	fs3 := flag.NewFlagSet("z", flag.ContinueOnError)
	RegisterRunnerFlags(fs3, WithBackendHelp("custom help"))
	if got := fs3.Lookup("backend").Usage; got != "custom help" {
		t.Errorf("backend help = %q", got)
	}
}

// TestPrintVersion: -simver prints the envelope version and signals the
// command to stop.
func TestPrintVersion(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterRunnerFlags(fs)
	if err := fs.Parse([]string{"-simver"}); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if !f.PrintVersion(&out) {
		t.Fatal("PrintVersion did not fire for -simver")
	}
	if got := strings.TrimSpace(out.String()); got != sim.Version() {
		t.Fatalf("printed %q, want %q", got, sim.Version())
	}

	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	f2 := RegisterRunnerFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f2.PrintVersion(&out) {
		t.Fatal("PrintVersion fired without -simver")
	}
}

// TestBuild: local backend + fs store resolve into runner options; a
// bad store spec fails without leaking the backend.
func TestBuild(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterRunnerFlags(fs)
	if err := fs.Parse([]string{"-store", "fs:" + t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	b, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Backend == nil || b.Store == nil {
		t.Fatalf("build incomplete: %+v", b)
	}
	if len(b.RunnerOptions()) == 0 {
		t.Fatal("no runner options from a backend+store build")
	}
	if sim.New(b.RunnerOptions()...) == nil {
		t.Fatal("options do not build a runner")
	}

	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	f2 := RegisterRunnerFlags(fs2)
	if err := fs2.Parse([]string{"-store", "gopher://nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Build(); err == nil {
		t.Fatal("bad store spec accepted")
	}

	// Storage off, no backend: an empty but usable Built.
	fs3 := flag.NewFlagSet("z", flag.ContinueOnError)
	f3 := RegisterRunnerFlags(fs3, WithoutBackend())
	if err := fs3.Parse(nil); err != nil {
		t.Fatal(err)
	}
	b3, err := f3.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Close()
	if b3.Backend != nil || b3.Store != nil || len(b3.RunnerOptions()) != 0 {
		t.Fatalf("empty build not empty: %+v", b3)
	}
	var nilBuilt *Built
	nilBuilt.Close() // must not panic
}
